#include "emu/block_cache.h"

#include <array>
#include <span>

#include "emu/memory.h"
#include "isa/decoder.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace r2r::emu {

namespace {

bool is_terminator(isa::Mnemonic mnemonic) noexcept {
  switch (mnemonic) {
    case isa::Mnemonic::kJmp:
    case isa::Mnemonic::kJcc:
    case isa::Mnemonic::kCall:
    case isa::Mnemonic::kJmpReg:
    case isa::Mnemonic::kCallReg:
    case isa::Mnemonic::kRet:
    // Unconditional traps end the block too; caching past them would only
    // ever hold dead entries.
    case isa::Mnemonic::kHlt:
    case isa::Mnemonic::kInt3:
    case isa::Mnemonic::kUd2:
      return true;
    default:
      // kSyscall stays mid-block: it does not redirect rip (exit() unwinds
      // via an exception, which leaves the cache untouched).
      return false;
  }
}

}  // namespace

void BlockCache::sync(Memory& memory) {
  const std::uint64_t epoch = memory.code_write_epoch();
  if (epoch == synced_epoch_) return;
  synced_epoch_ = epoch;
  const Memory::CodeWrites writes = memory.take_code_writes();
  if (writes.overflow) {
    ++invalidations_;
    clear();
    return;
  }
  for (const auto& [begin, end] : writes.ranges) invalidate_range(begin, end);
}

const DecodedBlock* BlockCache::lookup(std::uint64_t rip, Memory& memory) {
  const auto it = blocks_.find(rip);
  if (it != blocks_.end()) {
    ++hits_;
    return &it->second;
  }
  ++misses_;
  return build(rip, memory);
}

const DecodedBlock* BlockCache::build(std::uint64_t rip, Memory& memory) {
  if (arena_.size() >= kMaxCachedInstructions) clear();

  DecodedBlock block;
  block.start = rip;
  block.first = static_cast<std::uint32_t>(arena_.size());

  std::uint64_t address = rip;
  std::array<std::uint8_t, isa::kMaxInstructionLength> window{};
  while (block.count < kMaxBlockInstructions) {
    isa::Decoded decoded;
    try {
      const std::size_t fetched = memory.fetch(address, window);
      decoded = target_->decode(std::span<const std::uint8_t>(window.data(), fetched),
                                address);
    } catch (const support::Error&) {
      // Unfetchable or undecodable: end the block here. The slow path hits
      // the identical error when execution actually reaches this address.
      break;
    }
    arena_.push_back(CachedInstr{decoded.instr, decoded.length});
    ++block.count;
    address += decoded.length;
    if (is_terminator(decoded.instr.mnemonic)) break;
  }

  if (block.count == 0) return nullptr;
  block.end = address;
  return &blocks_.emplace(rip, block).first->second;
}

void BlockCache::invalidate_range(std::uint64_t begin, std::uint64_t end) {
  // Erase every block overlapping [begin, end). Arena entries are left
  // behind as tombstones (memory-safe; reclaimed by the clear-on-full
  // valve) — invalidation is rare enough that compaction would cost more
  // than it saves.
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    const DecodedBlock& block = it->second;
    if (block.start < end && begin < block.end) {
      ++invalidations_;
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::clear() {
  blocks_.clear();
  arena_.clear();
}

void BlockCache::flush_metrics() {
  obs::Metrics& metrics = obs::Metrics::instance();
  if (hits_ != flushed_hits_) {
    metrics.counter("emu.block_cache.hits").add(hits_ - flushed_hits_);
    flushed_hits_ = hits_;
  }
  if (misses_ != flushed_misses_) {
    metrics.counter("emu.block_cache.misses").add(misses_ - flushed_misses_);
    flushed_misses_ = misses_;
  }
  if (invalidations_ != flushed_invalidations_) {
    metrics.counter("emu.block_cache.invalidations")
        .add(invalidations_ - flushed_invalidations_);
    flushed_invalidations_ = invalidations_;
  }
}

}  // namespace r2r::emu
