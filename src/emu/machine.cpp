#include "emu/machine.h"

#include <array>

#include "emu/block_cache.h"
#include "isa/decoder.h"
#include "isa/semantics.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::emu {

namespace {

using isa::Cond;
using isa::Instruction;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Reg;
using isa::Width;
using support::bit;
using support::ErrorKind;
using support::parity_even_low8;
using support::truncate;

constexpr std::uint64_t kOutputLimit = 1 << 20;

unsigned bits_of(Width w) noexcept { return isa::width_bits(w); }

bool msb(std::uint64_t value, Width w) noexcept { return bit(value, bits_of(w) - 1); }

void set_result_flags(Flags& f, std::uint64_t result, Width w) noexcept {
  f.zf = truncate(result, bits_of(w)) == 0;
  f.sf = msb(result, w);
  f.pf = parity_even_low8(result);
}

void set_logic_flags(Flags& f, std::uint64_t result, Width w) noexcept {
  set_result_flags(f, result, w);
  f.cf = false;
  f.of = false;
  f.af = false;  // architecturally undefined; pinned for determinism
}

void set_add_flags(Flags& f, std::uint64_t a, std::uint64_t b, std::uint64_t result,
                   Width w) noexcept {
  const unsigned n = bits_of(w);
  const std::uint64_t r = truncate(result, n);
  set_result_flags(f, r, w);
  f.cf = r < truncate(a, n);
  f.of = bit((a ^ ~b) & (a ^ r), n - 1);
  f.af = bit(a ^ b ^ r, 4);
}

void set_sub_flags(Flags& f, std::uint64_t a, std::uint64_t b, std::uint64_t result,
                   Width w) noexcept {
  const unsigned n = bits_of(w);
  const std::uint64_t r = truncate(result, n);
  set_result_flags(f, r, w);
  f.cf = truncate(a, n) < truncate(b, n);
  f.of = bit((a ^ b) & (a ^ r), n - 1);
  f.af = bit(a ^ b ^ r, 4);
}

}  // namespace

Machine::Machine(const elf::Image& image, std::string stdin_data)
    : stdin_data_(std::move(stdin_data)) {
  const auto arch = isa::arch_from_elf_machine(image.machine);
  support::check(arch.has_value(), ErrorKind::kElf,
                 "image has an e_machine no registered target handles");
  target_ = &isa::target(*arch);
  memory_.map_image(image);
  const std::uint64_t stack_base = target_->stack_base();
  memory_.map("[stack]", stack_base - kStackSize, kStackSize, elf::kRead | elf::kWrite);
  cpu_.rip = image.entry;
  cpu_.gpr[isa::reg_number(Reg::rsp)] = stack_base - 16;
  cache_ = std::make_unique<BlockCache>(*target_);
  memory_.set_code_write_tracking(true);
}

Machine::~Machine() {
  if (cache_ != nullptr) cache_->flush_metrics();
}

Machine::Machine(Machine&&) noexcept = default;
Machine& Machine::operator=(Machine&&) noexcept = default;

void Machine::set_block_cache_enabled(bool enabled) {
  if (enabled == (cache_ != nullptr)) return;
  if (enabled) {
    cache_ = std::make_unique<BlockCache>(*target_);
    memory_.set_code_write_tracking(true);
  } else {
    cache_->flush_metrics();
    cache_.reset();
    memory_.set_code_write_tracking(false);
  }
}

std::uint64_t Machine::effective_address(const MemOperand& mem) const {
  if (mem.rip_relative) {
    // The decoder resolved RIP-relative displacements to absolute targets.
    return static_cast<std::uint64_t>(mem.disp);
  }
  std::uint64_t address = static_cast<std::uint64_t>(mem.disp);
  if (mem.base) address += cpu_.read(*mem.base, Width::b64);
  if (mem.index) address += cpu_.read(*mem.index, Width::b64) * mem.scale;
  return address;
}

std::uint64_t Machine::read_operand(const isa::Operand& op, Width width) {
  if (isa::is_reg(op)) return cpu_.read(std::get<Reg>(op), width);
  if (isa::is_imm(op)) {
    return truncate(static_cast<std::uint64_t>(std::get<isa::ImmOperand>(op).value),
                    bits_of(width));
  }
  if (isa::is_mem(op)) {
    return memory_.read(effective_address(std::get<MemOperand>(op)),
                        isa::width_bytes(width));
  }
  support::fail(ErrorKind::kExecution, "label operand reached the executor");
}

void Machine::write_operand(const isa::Operand& op, Width width, std::uint64_t value) {
  if (isa::is_reg(op)) {
    cpu_.write(std::get<Reg>(op), width, value);
    return;
  }
  if (isa::is_mem(op)) {
    memory_.write(effective_address(std::get<MemOperand>(op)), value,
                  isa::width_bytes(width));
    return;
  }
  support::fail(ErrorKind::kExecution, "bad destination operand");
}

void Machine::push64(std::uint64_t value) {
  std::uint64_t& rsp = cpu_.gpr[isa::reg_number(Reg::rsp)];
  rsp -= 8;
  memory_.write(rsp, value, 8);
}

std::uint64_t Machine::pop64() {
  std::uint64_t& rsp = cpu_.gpr[isa::reg_number(Reg::rsp)];
  const std::uint64_t value = memory_.read(rsp, 8);
  rsp += 8;
  return value;
}

void Machine::do_syscall() {
  const std::uint64_t number = cpu_.read(Reg::rax, Width::b64);
  const std::uint64_t a0 = cpu_.read(Reg::rdi, Width::b64);
  const std::uint64_t a1 = cpu_.read(Reg::rsi, Width::b64);
  const std::uint64_t a2 = cpu_.read(Reg::rdx, Width::b64);
  std::int64_t result = 0;
  switch (number) {
    case 0: {  // read(fd, buf, len) — only stdin
      if (a0 != 0) {
        result = -9;  // EBADF
        break;
      }
      std::uint64_t count = a2;
      const std::uint64_t available = stdin_data_.size() - stdin_pos_;
      if (count > available) count = available;
      for (std::uint64_t i = 0; i < count; ++i) {
        memory_.write(a1 + i, static_cast<std::uint8_t>(stdin_data_[stdin_pos_ + i]), 1);
      }
      stdin_pos_ += count;
      result = static_cast<std::int64_t>(count);
      break;
    }
    case 1: {  // write(fd, buf, len) — stdout and stderr both captured
      if (a0 != 1 && a0 != 2) {
        result = -9;
        break;
      }
      support::check(output_.size() + a2 <= kOutputLimit, ErrorKind::kExecution,
                     "guest output limit exceeded");
      for (std::uint64_t i = 0; i < a2; ++i) {
        output_.push_back(static_cast<char>(memory_.read(a1 + i, 1)));
      }
      result = static_cast<std::int64_t>(a2);
      break;
    }
    case 60:  // exit(code)
      throw ExitRequested{static_cast<std::int64_t>(a0)};
    default:
      result = -38;  // ENOSYS
      break;
  }
  cpu_.write(Reg::rax, Width::b64, static_cast<std::uint64_t>(result));
  // Real syscall clobbers rcx (return rip) and r11 (rflags).
  cpu_.write(Reg::rcx, Width::b64, cpu_.rip);
  cpu_.write(Reg::r11, Width::b64, cpu_.flags.to_rflags());
}

void Machine::execute(const Instruction& instr, std::uint64_t next_rip) {
  const Width w = instr.width;
  Flags& f = cpu_.flags;
  cpu_.rip = next_rip;  // default; control flow overrides below

  switch (instr.mnemonic) {
    case Mnemonic::kMov:
      write_operand(instr.op(0), w, read_operand(instr.op(1), w));
      break;

    case Mnemonic::kMovzx:
      write_operand(instr.op(0), w, read_operand(instr.op(1), Width::b8));
      break;

    case Mnemonic::kMovsx: {
      const std::uint64_t v = read_operand(instr.op(1), Width::b8);
      write_operand(instr.op(0), w,
                    static_cast<std::uint64_t>(support::sign_extend(v, 8)));
      break;
    }

    case Mnemonic::kLea:
      cpu_.write(std::get<Reg>(instr.op(0)), w,
                 effective_address(std::get<MemOperand>(instr.op(1))));
      break;

    case Mnemonic::kAdd: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t b = read_operand(instr.op(1), w);
      const std::uint64_t r = truncate(a + b, bits_of(w));
      set_add_flags(f, a, b, r, w);
      write_operand(instr.op(0), w, r);
      break;
    }
    case Mnemonic::kSub: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t b = read_operand(instr.op(1), w);
      const std::uint64_t r = truncate(a - b, bits_of(w));
      set_sub_flags(f, a, b, r, w);
      write_operand(instr.op(0), w, r);
      break;
    }
    case Mnemonic::kCmp: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t b = read_operand(instr.op(1), w);
      set_sub_flags(f, a, b, truncate(a - b, bits_of(w)), w);
      break;
    }
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kTest: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t b = read_operand(instr.op(1), w);
      std::uint64_t r = 0;
      switch (instr.mnemonic) {
        case Mnemonic::kAnd:
        case Mnemonic::kTest: r = a & b; break;
        case Mnemonic::kOr: r = a | b; break;
        default: r = a ^ b; break;
      }
      r = truncate(r, bits_of(w));
      set_logic_flags(f, r, w);
      if (instr.mnemonic != Mnemonic::kTest) write_operand(instr.op(0), w, r);
      break;
    }

    case Mnemonic::kNot: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      write_operand(instr.op(0), w, truncate(~a, bits_of(w)));
      break;  // not does not affect flags
    }
    case Mnemonic::kNeg: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t r = truncate(0 - a, bits_of(w));
      set_sub_flags(f, 0, a, r, w);
      f.cf = truncate(a, bits_of(w)) != 0;
      write_operand(instr.op(0), w, r);
      break;
    }
    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      const std::uint64_t a = read_operand(instr.op(0), w);
      const bool inc = instr.mnemonic == Mnemonic::kInc;
      const std::uint64_t r = truncate(inc ? a + 1 : a - 1, bits_of(w));
      const bool saved_cf = f.cf;  // inc/dec preserve CF
      if (inc) {
        set_add_flags(f, a, 1, r, w);
      } else {
        set_sub_flags(f, a, 1, r, w);
      }
      f.cf = saved_cf;
      write_operand(instr.op(0), w, r);
      break;
    }

    case Mnemonic::kImul: {
      const auto a = static_cast<__int128>(
          support::sign_extend(read_operand(instr.op(0), w), bits_of(w)));
      const auto b = static_cast<__int128>(
          support::sign_extend(read_operand(instr.op(1), w), bits_of(w)));
      const __int128 full = a * b;
      const std::uint64_t r = truncate(static_cast<std::uint64_t>(full), bits_of(w));
      const auto back = static_cast<__int128>(support::sign_extend(r, bits_of(w)));
      set_result_flags(f, r, w);  // architecturally undefined; pinned
      f.cf = f.of = (back != full);
      f.af = false;
      write_operand(instr.op(0), w, r);
      break;
    }

    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar: {
      const unsigned n = bits_of(w);
      const std::uint64_t a = read_operand(instr.op(0), w);
      const std::uint64_t raw_count = read_operand(instr.op(1), Width::b8);
      const unsigned count = static_cast<unsigned>(raw_count) & (n == 64 ? 63 : 31);
      if (count == 0) break;  // flags unchanged
      std::uint64_t r = 0;
      if (instr.mnemonic == Mnemonic::kShl) {
        r = count >= n ? 0 : truncate(a << count, n);
        f.cf = count <= n && bit(a, n - count);
        f.of = count == 1 ? (msb(r, w) != f.cf) : false;
      } else if (instr.mnemonic == Mnemonic::kShr) {
        r = count >= n ? 0 : truncate(a, n) >> count;
        f.cf = count <= n && bit(a, count - 1);
        f.of = count == 1 ? msb(a, w) : false;
      } else {
        const std::int64_t sa = support::sign_extend(a, n);
        r = truncate(static_cast<std::uint64_t>(sa >> (count >= n ? n - 1 : count)), n);
        f.cf = bit(static_cast<std::uint64_t>(sa), count >= n ? n - 1 : count - 1);
        f.of = false;
      }
      set_result_flags(f, r, w);
      f.af = false;
      write_operand(instr.op(0), w, r);
      break;
    }

    case Mnemonic::kPush:
      push64(read_operand(instr.op(0), Width::b64));
      break;
    case Mnemonic::kPop:
      cpu_.write(std::get<Reg>(instr.op(0)), Width::b64, pop64());
      break;
    case Mnemonic::kPushfq:
      push64(f.to_rflags());
      break;
    case Mnemonic::kPopfq:
      f = Flags::from_rflags(pop64());
      break;

    case Mnemonic::kJmp:
      cpu_.rip = read_operand(instr.op(0), Width::b64);
      break;
    case Mnemonic::kJcc:
      if (evaluate(instr.cond, f)) cpu_.rip = read_operand(instr.op(0), Width::b64);
      break;
    case Mnemonic::kCall:
      if (target_->link_register_calls()) {
        cpu_.write(target_->link_register(), Width::b64, next_rip);
      } else {
        push64(next_rip);
      }
      cpu_.rip = read_operand(instr.op(0), Width::b64);
      break;
    case Mnemonic::kJmpReg:
      cpu_.rip = read_operand(instr.op(0), Width::b64);
      break;
    case Mnemonic::kCallReg: {
      const std::uint64_t target = read_operand(instr.op(0), Width::b64);
      if (target_->link_register_calls()) {
        cpu_.write(target_->link_register(), Width::b64, next_rip);
      } else {
        push64(next_rip);
      }
      cpu_.rip = target;
      break;
    }
    case Mnemonic::kRet:
      cpu_.rip = target_->link_register_calls()
                     ? cpu_.read(target_->link_register(), Width::b64)
                     : pop64();
      break;

    case Mnemonic::kSetcc:
      write_operand(instr.op(0), Width::b8, evaluate(instr.cond, f) ? 1 : 0);
      break;

    case Mnemonic::kCmovcc: {
      // In 32-bit width cmov writes (zero-extends) even when the condition
      // is false, exactly like hardware.
      if (evaluate(instr.cond, f)) {
        write_operand(instr.op(0), w, read_operand(instr.op(1), w));
      } else if (w == Width::b32) {
        write_operand(instr.op(0), w, cpu_.read(std::get<Reg>(instr.op(0)), w));
      }
      break;
    }

    case Mnemonic::kSyscall:
      do_syscall();
      break;

    case Mnemonic::kNop:
      break;
    case Mnemonic::kHlt:
      support::fail(ErrorKind::kExecution, "hlt in user mode");
    case Mnemonic::kInt3:
      support::fail(ErrorKind::kExecution, "breakpoint trap");
    case Mnemonic::kUd2:
      support::fail(ErrorKind::kExecution, "ud2 invalid opcode");

    case Mnemonic::kReadFlags:
      write_operand(instr.op(0), w, f.to_rflags());
      break;
    case Mnemonic::kWriteFlags:
      f = Flags::from_rflags(read_operand(instr.op(0), w));
      break;
  }
}

void Machine::step(bool faulted_this_step, const FaultSpec* fault, TraceEntry* entry) {
  if (faulted_this_step && fault->kind == FaultSpec::Kind::kRegisterBitFlip) {
    const unsigned reg = (fault->bit_offset / 64) % isa::kRegCount;
    cpu_.gpr[reg] ^= std::uint64_t{1} << (fault->bit_offset % 64);
  }
  if (faulted_this_step && fault->kind == FaultSpec::Kind::kFlagFlip) {
    switch (fault->bit_offset % 6) {
      case 0: cpu_.flags.cf = !cpu_.flags.cf; break;
      case 1: cpu_.flags.pf = !cpu_.flags.pf; break;
      case 2: cpu_.flags.af = !cpu_.flags.af; break;
      case 3: cpu_.flags.zf = !cpu_.flags.zf; break;
      case 4: cpu_.flags.sf = !cpu_.flags.sf; break;
      case 5: cpu_.flags.of = !cpu_.flags.of; break;
    }
  }
  std::array<std::uint8_t, isa::kMaxInstructionLength> window{};
  const std::size_t fetched = memory_.fetch(cpu_.rip, window);

  if (faulted_this_step && fault->kind == FaultSpec::Kind::kBitFlip) {
    // Transient fault: flip one bit of the fetched encoding; memory keeps
    // the original bytes (mirrors a glitch on the instruction bus).
    // Enumeration clamps planned offsets to the instruction's actual
    // length, so an out-of-range offset is a planning bug — fail loudly
    // instead of silently running the fault-free instruction and counting
    // a phantom fault.
    const std::uint32_t byte_index = fault->bit_offset / 8;
    support::check(byte_index < fetched, ErrorKind::kExecution,
                   "bit-flip fault offset past the fetched encoding");
    window[byte_index] =
        static_cast<std::uint8_t>(window[byte_index] ^ (1U << (fault->bit_offset % 8)));
  }

  const isa::Decoded decoded =
      target_->decode(std::span<const std::uint8_t>(window.data(), fetched), cpu_.rip);
  if (entry != nullptr) entry->length = decoded.length;

  if (faulted_this_step && fault->kind == FaultSpec::Kind::kSkip) {
    cpu_.rip += decoded.length;
    return;
  }
  execute(decoded.instr, cpu_.rip + decoded.length);
}

bool Machine::run_cached(const RunConfig& config, const FaultSpec* fault,
                         RunResult& result) {
  cache_->sync(memory_);
  const DecodedBlock* block = cache_->lookup(cpu_.rip, memory_);
  if (block == nullptr) return false;

  // Stop before the faulted step: the faulted instruction always goes
  // through the slow path, so the cache never serves a mutated encoding
  // and pre-step register/flag flips land exactly where they would
  // uncached.
  std::uint64_t limit = config.fuel;
  if (fault != nullptr && fault->trace_index >= steps_ && fault->trace_index < limit) {
    limit = fault->trace_index;
  }

  const std::uint64_t epoch = memory_.code_write_epoch();
  bool executed = false;
  for (std::uint32_t i = 0; i < block->count && steps_ < limit; ++i) {
    const CachedInstr& ci = cache_->instr(*block, i);
    if (config.record_trace) result.trace.push_back(TraceEntry{cpu_.rip, ci.length});
    ++steps_;
    executed = true;
    execute(ci.instr, cpu_.rip + ci.length);
    // A store into code invalidates blocks — break out so the next
    // iteration re-syncs before touching the cache again.
    if (memory_.code_write_epoch() != epoch) break;
  }
  return executed;
}

RunResult Machine::run(const RunConfig& config) {
  RunResult result;
  const FaultSpec* fault = config.fault ? &*config.fault : nullptr;
  try {
    while (steps_ < config.fuel) {
      const bool faulted = fault != nullptr && steps_ == fault->trace_index;
      if (cache_ != nullptr && !faulted && run_cached(config, fault, result)) {
        continue;
      }
      TraceEntry* entry = nullptr;
      if (config.record_trace) {
        // The entry is created before execution so the trace covers
        // instructions that exit or crash; step() fills in the length.
        result.trace.push_back(TraceEntry{cpu_.rip, 0});
        entry = &result.trace.back();
      }
      ++steps_;  // count attempted instructions, including the last
      step(faulted, fault, entry);
    }
    result.reason = StopReason::kFuelExhausted;
  } catch (const ExitRequested& exit) {
    result.reason = StopReason::kExited;
    result.exit_code = exit.code;
  } catch (const support::Error& error) {
    result.reason = StopReason::kCrashed;
    result.crash_detail = error.what();
  }
  result.steps = steps_;
  result.output = output_;
  return result;
}

RunResult run_image(const elf::Image& image, std::string stdin_data,
                    const RunConfig& config) {
  Machine machine(image, std::move(stdin_data));
  return machine.run(config);
}

}  // namespace r2r::emu
