#include "emu/memory.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace r2r::emu {

namespace {
using support::check;
using support::ErrorKind;

std::uint32_t required_perm(Access access) noexcept {
  switch (access) {
    case Access::kRead: return elf::kRead;
    case Access::kWrite: return elf::kWrite;
    case Access::kExecute: return elf::kExecute;
  }
  return 0;
}
}  // namespace

void Memory::map(std::string name, std::uint64_t base, std::uint64_t size,
                 std::uint32_t perms, std::span<const std::uint8_t> initial) {
  check(size > 0, ErrorKind::kInvalidArgument, "empty mapping");
  check(initial.size() <= size, ErrorKind::kInvalidArgument, "initial data exceeds size");
  for (const Region& region : regions_) {
    const bool disjoint = base + size <= region.base || region.base + region.bytes.size() <= base;
    check(disjoint, ErrorKind::kInvalidArgument,
          "mapping '" + name + "' overlaps '" + region.name + "'");
  }
  Region region;
  region.name = std::move(name);
  region.base = base;
  region.perms = perms;
  region.bytes.assign(size, 0);
  std::copy(initial.begin(), initial.end(), region.bytes.begin());
  region.dirty.assign(region.page_count(), false);
  region.synced.assign(region.page_count(), nullptr);
  regions_.push_back(std::move(region));
}

void Memory::map_image(const elf::Image& image) {
  for (const auto& segment : image.segments) {
    if (segment.size_in_memory() == 0) continue;
    map(segment.name, segment.vaddr, segment.size_in_memory(), segment.flags,
        segment.data);
  }
}

bool Memory::is_mapped(std::uint64_t address, std::uint64_t size) const noexcept {
  return region_for(address, size) != nullptr;
}

Memory::Region* Memory::region_for(std::uint64_t address, std::uint64_t size) noexcept {
  for (Region& region : regions_) {
    if (region.contains(address, size)) return &region;
  }
  return nullptr;
}

const Memory::Region* Memory::region_for(std::uint64_t address,
                                         std::uint64_t size) const noexcept {
  for (const Region& region : regions_) {
    if (region.contains(address, size)) return &region;
  }
  return nullptr;
}

std::uint64_t Memory::read(std::uint64_t address, unsigned bytes, Access access) {
  const Region* region = region_for(address, bytes);
  check(region != nullptr, ErrorKind::kMemory,
        "unmapped read at " + support::hex_string(address));
  check((region->perms & required_perm(access)) != 0, ErrorKind::kMemory,
        "permission violation reading " + support::hex_string(address));
  std::uint64_t value = 0;
  const std::size_t offset = address - region->base;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(region->bytes[offset + i]) << (8 * i);
  }
  return value;
}

void Memory::write(std::uint64_t address, std::uint64_t value, unsigned bytes) {
  Region* region = region_for(address, bytes);
  check(region != nullptr, ErrorKind::kMemory,
        "unmapped write at " + support::hex_string(address));
  check((region->perms & elf::kWrite) != 0, ErrorKind::kMemory,
        "permission violation writing " + support::hex_string(address));
  const std::size_t offset = address - region->base;
  region->mark_dirty(offset, bytes);
  for (unsigned i = 0; i < bytes; ++i) {
    region->bytes[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  if (track_code_writes_ && (region->perms & elf::kExecute) != 0) {
    note_code_write(address, address + bytes);
  }
}

std::size_t Memory::fetch(std::uint64_t address, std::span<std::uint8_t> out) {
  const Region* region = region_for(address, 1);
  check(region != nullptr, ErrorKind::kMemory,
        "unmapped fetch at " + support::hex_string(address));
  check((region->perms & elf::kExecute) != 0, ErrorKind::kMemory,
        "fetch from non-executable memory at " + support::hex_string(address));
  const std::size_t offset = address - region->base;
  const std::size_t available = region->bytes.size() - offset;
  const std::size_t count = available < out.size() ? available : out.size();
  std::copy_n(region->bytes.begin() + static_cast<std::ptrdiff_t>(offset), count,
              out.begin());
  return count;
}

std::vector<std::uint8_t> Memory::read_block(std::uint64_t address, std::size_t size) const {
  const Region* region = region_for(address, size);
  support::check(region != nullptr, ErrorKind::kMemory,
                 "unmapped block read at " + support::hex_string(address));
  const std::size_t offset = address - region->base;
  return {region->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          region->bytes.begin() + static_cast<std::ptrdiff_t>(offset + size)};
}

void Memory::write_block(std::uint64_t address, std::span<const std::uint8_t> data) {
  Region* region = region_for(address, data.size());
  support::check(region != nullptr, ErrorKind::kMemory,
                 "unmapped block write at " + support::hex_string(address));
  if (!data.empty()) region->mark_dirty(address - region->base, data.size());
  std::copy(data.begin(), data.end(),
            region->bytes.begin() + static_cast<std::ptrdiff_t>(address - region->base));
  if (track_code_writes_ && !data.empty() && (region->perms & elf::kExecute) != 0) {
    note_code_write(address, address + data.size());
  }
}

Memory::Snapshot Memory::capture() {
  Snapshot snapshot;
  snapshot.regions.reserve(regions_.size());
  for (Region& region : regions_) {
    Snapshot::RegionState state;
    state.base = region.base;
    state.size = region.bytes.size();
    const std::size_t pages = region.page_count();
    state.pages.reserve(pages);
    for (std::size_t page = 0; page < pages; ++page) {
      if (!region.dirty[page] && region.synced[page] != nullptr) {
        state.pages.push_back(region.synced[page]);
        continue;
      }
      const std::size_t offset = page * kPageSize;
      const std::size_t length =
          std::min<std::size_t>(kPageSize, region.bytes.size() - offset);
      auto copy = std::make_shared<Page>(
          region.bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          region.bytes.begin() + static_cast<std::ptrdiff_t>(offset + length));
      region.synced[page] = copy;
      region.dirty[page] = false;
      state.pages.push_back(std::move(copy));
    }
    snapshot.regions.push_back(std::move(state));
  }
  return snapshot;
}

void Memory::restore(const Snapshot& snapshot) {
  check(snapshot.regions.size() == regions_.size(), ErrorKind::kInvalidArgument,
        "snapshot region count does not match this address space");
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Region& region = regions_[i];
    const Snapshot::RegionState& state = snapshot.regions[i];
    check(state.base == region.base && state.size == region.bytes.size(),
          ErrorKind::kInvalidArgument,
          "snapshot region layout does not match '" + region.name + "'");
    for (std::size_t page = 0; page < state.pages.size(); ++page) {
      if (!region.dirty[page] && region.synced[page] == state.pages[page]) continue;
      const Page& content = *state.pages[page];
      std::copy(content.begin(), content.end(),
                region.bytes.begin() + static_cast<std::ptrdiff_t>(page * kPageSize));
      region.synced[page] = state.pages[page];
      region.dirty[page] = false;
      if (track_code_writes_ && (region.perms & elf::kExecute) != 0) {
        const std::uint64_t begin = region.base + page * kPageSize;
        note_code_write(begin, begin + content.size());
      }
    }
  }
}

void Memory::set_code_write_tracking(bool enabled) noexcept {
  track_code_writes_ = enabled;
  if (!enabled) {
    code_writes_.ranges.clear();
    code_writes_.overflow = false;
  }
}

void Memory::note_code_write(std::uint64_t begin, std::uint64_t end) {
  ++code_write_epoch_;
  if (code_writes_.overflow) return;
  if (code_writes_.ranges.size() >= kMaxCodeWriteRanges) {
    code_writes_.ranges.clear();
    code_writes_.overflow = true;
    return;
  }
  code_writes_.ranges.emplace_back(begin, end);
}

Memory::CodeWrites Memory::take_code_writes() {
  CodeWrites taken = std::move(code_writes_);
  code_writes_.ranges.clear();
  code_writes_.overflow = false;
  return taken;
}

bool Memory::equals(const Snapshot& snapshot) const noexcept {
  if (snapshot.regions.size() != regions_.size()) return false;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const Region& region = regions_[i];
    const Snapshot::RegionState& state = snapshot.regions[i];
    if (state.base != region.base || state.size != region.bytes.size()) return false;
    for (std::size_t page = 0; page < state.pages.size(); ++page) {
      if (!region.dirty[page] && region.synced[page] == state.pages[page]) continue;
      const Page& content = *state.pages[page];
      if (!std::equal(content.begin(), content.end(),
                      region.bytes.begin() +
                          static_cast<std::ptrdiff_t>(page * kPageSize))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace r2r::emu
