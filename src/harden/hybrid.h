// r2r::harden — the Hybrid compiler-binary approach end-to-end
// (Section IV-C, upper half of Fig. 3):
//
//   binary --lift--> IR --cleanup passes--> --countermeasure pass-->
//          --lower--> hardened binary
//
// Pass ordering note (the paper's Section IV-C.3 caveat about keeping
// countermeasures intact through code generation): cleanup passes that
// merge redundant loads (state promotion) run strictly *before* the
// hardening pass — running them after would collapse the duplicated
// checksum/comparison computations back into single instances.
#pragma once

#include <cstdint>

#include "elf/image.h"
#include "ir/ir.h"
#include "lift/lifter.h"
#include "lower/lower.h"
#include "passes/stats.h"

namespace r2r::harden {

enum class HybridCountermeasure : std::uint8_t {
  kNone,                    ///< lift+lower only (measures rewriting overhead)
  kBranchHardening,         ///< the paper's conditional branch hardening
  kInstructionDuplication,  ///< the >=300% baseline of Section V-C
};

struct HybridConfig {
  HybridCountermeasure countermeasure = HybridCountermeasure::kBranchHardening;
  bool cleanup = true;  ///< state promotion + folding + DCE before hardening
  lower::LowerOptions lower_options;
};

struct HybridResult {
  ir::Module module;  ///< final IR (after countermeasure passes)
  elf::Image hardened;
  std::uint64_t original_code_size = 0;
  std::uint64_t hardened_code_size = 0;
  passes::OpcodeCounts ir_before;  ///< op counts before the countermeasure
  passes::OpcodeCounts ir_after;   ///< op counts after the countermeasure

  [[nodiscard]] double overhead_percent() const noexcept {
    if (original_code_size == 0) return 0.0;
    return 100.0 *
           (static_cast<double>(hardened_code_size) -
            static_cast<double>(original_code_size)) /
           static_cast<double>(original_code_size);
  }
};

/// Runs the full Hybrid pipeline on `input`.
HybridResult hybrid_harden(const elf::Image& input, const HybridConfig& config = {});

}  // namespace r2r::harden
