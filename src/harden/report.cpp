#include "harden/report.h"

#include "patch/pipeline.h"
#include "sim/engine.h"
#include "support/strings.h"

namespace r2r::harden {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (const std::size_t width : widths) {
        out += std::string(width + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

std::string residual_double_fault_section(const std::string& binary_name,
                                          const sim::PairCampaignResult& order2) {
  std::string out = "residual double-fault campaign: " + binary_name + "\n";
  out += "  order-1 faults: " + std::to_string(order2.order1.total_faults) +
         " (" + std::to_string(order2.order1.count(sim::Outcome::kSuccess)) +
         " successful)\n";
  out += "  order-2 pairs:  " + std::to_string(order2.total_pairs) + " within window " +
         std::to_string(order2.pair_window) + " (" +
         std::to_string(order2.count(sim::Outcome::kSuccess)) + " successful, " +
         std::to_string(order2.strictly_higher_order().size()) +
         " invisible to order 1)\n";
  const double reuse_rate =
      order2.total_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(order2.reused_pairs()) /
                static_cast<double>(order2.total_pairs);
  out += "  pruning:        " + std::to_string(order2.reused_pairs()) +
         " pairs reused from order-1 profiles (" +
         support::format_fixed(reuse_rate, 1) + "%), " +
         std::to_string(order2.simulated_pairs) + " simulated, " +
         std::to_string(order2.fully_pruned_first_faults) +
         " first faults fully pruned\n";
  if (!order2.vulnerabilities.empty()) {
    const auto sites = order2.patch_sites();
    out += "  patch sites:    ";
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i != 0) out += ", ";
      out += support::hex_string(sites[i]);
    }
    out += "\n";
  }

  TextTable outcomes;
  outcomes.add_row({"pair outcome", "count"});
  for (const auto& [outcome, count] : order2.outcome_counts) {
    outcomes.add_row({std::string(sim::to_string(outcome)), std::to_string(count)});
  }
  out += outcomes.render();

  if (order2.vulnerabilities.empty()) {
    out += "no residual double-fault vulnerabilities.\n";
    return out;
  }
  TextTable table;
  table.add_row({"first fault", "second fault", "successful pairs"});
  for (const auto& [addresses, count] : order2.merged_vulnerable_pairs()) {
    table.add_row({support::hex_string(addresses.first),
                   support::hex_string(addresses.second), std::to_string(count)});
  }
  out += table.render();
  return out;
}

std::string order2_fixpoint_section(const std::string& binary_name,
                                    const patch::PipelineResult& result) {
  std::string out = "order-2 fix-point trajectory: " + binary_name + "\n";

  TextTable table;
  table.add_row({"iteration", "order", "faults", "pairs", "sites", "patched",
                 "code bytes"});
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const patch::IterationReport& it = result.iterations[i];
    table.add_row({std::to_string(i), std::to_string(it.order),
                   std::to_string(it.successful_faults),
                   it.order >= 2 ? std::to_string(it.successful_pairs) +
                                       "/" + std::to_string(it.total_pairs)
                                 : std::string("-"),
                   it.order >= 2 ? std::to_string(it.pair_patch_sites)
                                 : std::string("-"),
                   std::to_string(it.patches_applied),
                   std::to_string(it.code_size)});
  }
  out += table.render();

  out += "  fix-point: " + std::string(result.fixpoint ? "yes" : "NO (cap hit)") +
         ", order-2 clean: " + std::string(result.order2_fixpoint ? "yes" : "NO") +
         "\n";
  out += "  overhead (Table-V style): order-1 " +
         support::format_fixed(result.order1_overhead_percent(), 1) +
         "% -> order-2 " + support::format_fixed(result.overhead_percent(), 1) +
         "% (+" + support::format_fixed(result.order2_overhead_delta_percent(), 1) +
         " points for closing the order-2 gap)\n";
  return out;
}

}  // namespace r2r::harden
