#include "harden/report.h"

#include "sim/engine.h"
#include "support/strings.h"

namespace r2r::harden {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (const std::size_t width : widths) {
        out += std::string(width + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

std::string residual_double_fault_section(const std::string& binary_name,
                                          const sim::PairCampaignResult& order2) {
  std::string out = "residual double-fault campaign: " + binary_name + "\n";
  out += "  order-1 faults: " + std::to_string(order2.order1.total_faults) +
         " (" + std::to_string(order2.order1.count(sim::Outcome::kSuccess)) +
         " successful)\n";
  out += "  order-2 pairs:  " + std::to_string(order2.total_pairs) + " within window " +
         std::to_string(order2.pair_window) + " (" +
         std::to_string(order2.count(sim::Outcome::kSuccess)) + " successful, " +
         std::to_string(order2.strictly_higher_order().size()) +
         " invisible to order 1)\n";
  const double reuse_rate =
      order2.total_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(order2.reused_pairs()) /
                static_cast<double>(order2.total_pairs);
  out += "  pruning:        " + std::to_string(order2.reused_pairs()) +
         " pairs reused from order-1 profiles (" +
         support::format_fixed(reuse_rate, 1) + "%), " +
         std::to_string(order2.simulated_pairs) + " simulated, " +
         std::to_string(order2.fully_pruned_first_faults) +
         " first faults fully pruned\n";

  TextTable outcomes;
  outcomes.add_row({"pair outcome", "count"});
  for (const auto& [outcome, count] : order2.outcome_counts) {
    outcomes.add_row({std::string(sim::to_string(outcome)), std::to_string(count)});
  }
  out += outcomes.render();

  if (order2.vulnerabilities.empty()) {
    out += "no residual double-fault vulnerabilities.\n";
    return out;
  }
  TextTable table;
  table.add_row({"first fault", "second fault", "successful pairs"});
  for (const auto& [addresses, count] : order2.merged_vulnerable_pairs()) {
    table.add_row({support::hex_string(addresses.first),
                   support::hex_string(addresses.second), std::to_string(count)});
  }
  out += table.render();
  return out;
}

}  // namespace r2r::harden
