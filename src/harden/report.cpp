#include "harden/report.h"

namespace r2r::harden {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (const std::size_t width : widths) {
        out += std::string(width + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace r2r::harden
