#include "harden/report.h"

#include "patch/pipeline.h"
#include "sim/engine.h"
#include "support/strings.h"

namespace r2r::harden {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (const std::size_t width : widths) {
        out += std::string(width + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

std::string TextTable::render_markdown() const {
  // Like render(), short rows are padded with empty cells: a pipe row with
  // fewer cells than the header is malformed GFM.
  std::size_t columns = 0;
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    out += "|";
    for (std::size_t c = 0; c < columns; ++c) {
      out += " " + (c < row.size() ? row[c] : std::string{}) + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (std::size_t c = 0; c < columns; ++c) out += " --- |";
      out += "\n";
    }
  }
  return out;
}

namespace {

harden::TextTable outcome_table(const std::string& header,
                                const std::map<sim::Outcome, std::uint64_t>& counts) {
  TextTable table;
  table.add_row({header, "count"});
  for (const auto& [outcome, count] : counts) {
    table.add_row({std::string(sim::to_string(outcome)), std::to_string(count)});
  }
  return table;
}

std::string address_chain(const std::vector<std::uint64_t>& addresses) {
  std::string out;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (i != 0) out += " -> ";
    out += support::hex_string(addresses[i]);
  }
  return out;
}

harden::TextTable vulnerable_tuple_table(const sim::TupleCampaignResult& tuples) {
  TextTable table;
  table.add_row({"fault addresses", "successful tuples"});
  for (const auto& [addresses, count] : tuples.merged_vulnerable_tuples()) {
    table.add_row({address_chain(addresses), std::to_string(count)});
  }
  return table;
}

/// Per-level reuse telemetry of the recursive sweep, one clause per order.
std::string tuple_level_summary_line(const sim::TupleCampaignResult& tuples) {
  std::string out;
  for (const sim::TupleLevelSummary& level : tuples.levels) {
    if (!out.empty()) out += "; ";
    out += "order " + std::to_string(level.order) + ": " +
           std::to_string(level.classified) + " classified (" +
           std::to_string(level.successful) + " successful)";
    if (level.sampled) out += " [sampled]";
  }
  return out;
}

/// The highest campaign order this pipeline run swept — what picks the
/// fix-point rendering (order-1 table, order-2 table, or the order-k
/// extras).
unsigned max_iteration_order(const patch::PipelineResult& result) {
  unsigned order = result.order1_code_size != 0 ? 2 : 1;
  for (const patch::IterationReport& it : result.iterations) {
    order = std::max(order, it.order);
  }
  for (const patch::OrderMilestone& milestone : result.order_milestones) {
    order = std::max(order, milestone.order);
  }
  return order;
}

/// "2/500"-style residual column: pairs for order-2 rows, top-level tuples
/// for order-3+ rows, "-" for order-1 rows.
std::string residual_cell(const patch::IterationReport& it) {
  if (it.order >= 3) {
    return std::to_string(it.successful_tuples) + "/" + std::to_string(it.total_tuples);
  }
  if (it.order == 2) {
    return std::to_string(it.successful_pairs) + "/" + std::to_string(it.total_pairs);
  }
  return "-";
}

std::string sites_cell(const patch::IterationReport& it) {
  if (it.order >= 3) return std::to_string(it.tuple_patch_sites);
  if (it.order == 2) return std::to_string(it.pair_patch_sites);
  return "-";
}

/// The overhead-vs-k trajectory line, rendered only for order-3+ runs.
std::string milestone_line(const patch::PipelineResult& result) {
  std::string out;
  for (const patch::OrderMilestone& milestone : result.order_milestones) {
    if (!out.empty()) out += " -> ";
    const double overhead =
        result.original_code_size == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(milestone.code_size) -
                   static_cast<double>(result.original_code_size)) /
                  static_cast<double>(result.original_code_size);
    out += "order " + std::to_string(milestone.order) + " " +
           std::to_string(milestone.code_size) + " B (" +
           support::format_fixed(overhead, 1) + "%)";
  }
  return out;
}

harden::TextTable vulnerable_point_table(const sim::CampaignResult& campaign) {
  TextTable table;
  table.add_row({"address", "hits", "by kind"});
  for (const auto& report : campaign.merged_by_address()) {
    std::string kinds;
    for (const auto& [kind, count] : report.by_kind) {
      if (!kinds.empty()) kinds += ", ";
      kinds += std::string(sim::kind_name(kind)) + " x" + std::to_string(count);
    }
    table.add_row({support::hex_string(report.address), std::to_string(report.hits),
                   kinds});
  }
  return table;
}

}  // namespace

std::string campaign_section(const std::string& binary_name,
                             const sim::CampaignResult& campaign) {
  std::string out = "fault campaign: " + binary_name + "\n";
  out += "  faults: " + std::to_string(campaign.total_faults) + " over " +
         std::to_string(campaign.trace_length) + " trace entries (" +
         std::to_string(campaign.count(sim::Outcome::kSuccess)) + " successful at " +
         std::to_string(campaign.vulnerable_addresses().size()) + " point(s))\n";
  out += "  engine: checkpoint interval " + std::to_string(campaign.checkpoint_interval) +
         ", " + std::to_string(campaign.snapshot_count) + " snapshots, " +
         std::to_string(campaign.pruned_faults) + " runs convergence-pruned, " +
         std::to_string(campaign.threads_used) + " thread(s)\n";
  out += outcome_table("outcome", campaign.outcome_counts).render();
  if (campaign.vulnerabilities.empty()) {
    out += "no vulnerabilities.\n";
    return out;
  }
  out += vulnerable_point_table(campaign).render();
  return out;
}

std::string campaign_markdown_section(const std::string& binary_name,
                                      const sim::CampaignResult& campaign) {
  std::string out = "### Fault campaign: " + binary_name + "\n\n";
  out += std::to_string(campaign.total_faults) + " faults over " +
         std::to_string(campaign.trace_length) + " trace entries; **" +
         std::to_string(campaign.count(sim::Outcome::kSuccess)) + " successful** at " +
         std::to_string(campaign.vulnerable_addresses().size()) +
         " vulnerable point(s). Engine: checkpoint interval " +
         std::to_string(campaign.checkpoint_interval) + ", " +
         std::to_string(campaign.snapshot_count) + " snapshots, " +
         std::to_string(campaign.pruned_faults) + " runs convergence-pruned, " +
         std::to_string(campaign.threads_used) + " thread(s).\n\n";
  out += outcome_table("outcome", campaign.outcome_counts).render_markdown();
  if (!campaign.vulnerabilities.empty()) {
    out += "\n" + vulnerable_point_table(campaign).render_markdown();
  }
  return out;
}

std::string pair_campaign_markdown_section(const std::string& binary_name,
                                           const sim::PairCampaignResult& order2) {
  std::string out = "### Double-fault campaign: " + binary_name + "\n\n";
  out += std::to_string(order2.total_pairs) + " pairs within window " +
         std::to_string(order2.pair_window) + " over " +
         std::to_string(order2.trace_length) + " trace entries; **" +
         std::to_string(order2.count(sim::Outcome::kSuccess)) + " successful**, " +
         std::to_string(order2.strictly_higher_order().size()) +
         " invisible to order 1. Order-1 phase: " +
         std::to_string(order2.order1.total_faults) + " faults, " +
         std::to_string(order2.order1.count(sim::Outcome::kSuccess)) +
         " successful. Pruning: " + std::to_string(order2.reused_pairs()) +
         " pairs reused from order-1 profiles, " +
         std::to_string(order2.simulated_pairs) + " simulated.\n\n";
  out += outcome_table("pair outcome", order2.outcome_counts).render_markdown();
  if (!order2.vulnerabilities.empty()) {
    TextTable table;
    table.add_row({"first fault", "second fault", "successful pairs"});
    for (const auto& [addresses, count] : order2.merged_vulnerable_pairs()) {
      table.add_row({support::hex_string(addresses.first),
                     support::hex_string(addresses.second), std::to_string(count)});
    }
    out += "\n" + table.render_markdown();
  }
  return out;
}

std::string fixpoint_markdown_section(const std::string& binary_name,
                                      const patch::PipelineResult& result) {
  std::string out = "### Faulter+Patcher fix-point: " + binary_name + "\n\n";
  const unsigned max_order = max_iteration_order(result);
  TextTable table;
  table.add_row({"iteration", "order", "faults",
                 max_order >= 3 ? "sets" : "pairs", "sites", "patched",
                 "code bytes"});
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const patch::IterationReport& it = result.iterations[i];
    table.add_row({std::to_string(i), std::to_string(it.order),
                   std::to_string(it.successful_faults), residual_cell(it),
                   sites_cell(it), std::to_string(it.patches_applied),
                   std::to_string(it.code_size)});
  }
  out += table.render_markdown();
  out += "\nFix-point: **" + std::string(result.fixpoint ? "yes" : "NO (cap hit)") +
         "**; order-2 clean: **" + std::string(result.order2_fixpoint ? "yes" : "NO") +
         "**";
  if (max_order >= 3) {
    out += "; order-" + std::to_string(max_order) +
           " clean: **" + std::string(result.orderk_fixpoint ? "yes" : "NO") + "**";
  }
  out += ". Overhead (Table-V style): " +
         support::format_fixed(result.overhead_percent(), 1) + "%";
  if (result.order1_code_size != 0) {
    out += " (order-1 " + support::format_fixed(result.order1_overhead_percent(), 1) +
           "% + " + support::format_fixed(result.order2_overhead_delta_percent(), 1) +
           " points for closing the order-2 gap)";
  }
  out += ".";
  if (max_order >= 3 && !result.order_milestones.empty()) {
    out += " Overhead vs k: " + milestone_line(result) + ".";
  }
  out += "\n";
  return out;
}

std::string residual_double_fault_section(const std::string& binary_name,
                                          const sim::PairCampaignResult& order2) {
  std::string out = "residual double-fault campaign: " + binary_name + "\n";
  out += "  order-1 faults: " + std::to_string(order2.order1.total_faults) +
         " (" + std::to_string(order2.order1.count(sim::Outcome::kSuccess)) +
         " successful)\n";
  out += "  order-2 pairs:  " + std::to_string(order2.total_pairs) + " within window " +
         std::to_string(order2.pair_window) + " (" +
         std::to_string(order2.count(sim::Outcome::kSuccess)) + " successful, " +
         std::to_string(order2.strictly_higher_order().size()) +
         " invisible to order 1)\n";
  const double reuse_rate =
      order2.total_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(order2.reused_pairs()) /
                static_cast<double>(order2.total_pairs);
  out += "  pruning:        " + std::to_string(order2.reused_pairs()) +
         " pairs reused from order-1 profiles (" +
         support::format_fixed(reuse_rate, 1) + "%), " +
         std::to_string(order2.simulated_pairs) + " simulated, " +
         std::to_string(order2.fully_pruned_first_faults) +
         " first faults fully pruned\n";
  if (!order2.vulnerabilities.empty()) {
    const auto sites = order2.patch_sites();
    out += "  patch sites:    ";
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i != 0) out += ", ";
      out += support::hex_string(sites[i]);
    }
    out += "\n";
  }

  TextTable outcomes;
  outcomes.add_row({"pair outcome", "count"});
  for (const auto& [outcome, count] : order2.outcome_counts) {
    outcomes.add_row({std::string(sim::to_string(outcome)), std::to_string(count)});
  }
  out += outcomes.render();

  if (order2.vulnerabilities.empty()) {
    out += "no residual double-fault vulnerabilities.\n";
    return out;
  }
  TextTable table;
  table.add_row({"first fault", "second fault", "successful pairs"});
  for (const auto& [addresses, count] : order2.merged_vulnerable_pairs()) {
    table.add_row({support::hex_string(addresses.first),
                   support::hex_string(addresses.second), std::to_string(count)});
  }
  out += table.render();
  return out;
}

std::string residual_tuple_fault_section(const std::string& binary_name,
                                         const sim::TupleCampaignResult& tuples) {
  std::string out = "residual " + std::to_string(tuples.order) + "-tuple campaign: " +
                    binary_name + "\n";
  out += "  order-1 faults: " + std::to_string(tuples.order1.total_faults) + " (" +
         std::to_string(tuples.order1.count(sim::Outcome::kSuccess)) + " successful)\n";
  out += "  order-" + std::to_string(tuples.order) +
         " tuples: " + std::to_string(tuples.total_tuples) + " within window " +
         std::to_string(tuples.pair_window) + " (" +
         std::to_string(tuples.count(sim::Outcome::kSuccess)) + " successful, " +
         std::to_string(tuples.strictly_higher_order().size()) +
         " invisible to order 1)\n";
  out += "  levels:         " + tuple_level_summary_line(tuples) + "\n";
  const double reuse_rate =
      tuples.total_tuples == 0
          ? 0.0
          : 100.0 * static_cast<double>(tuples.reused_tuples()) /
                static_cast<double>(tuples.total_tuples);
  out += "  pruning:        " + std::to_string(tuples.reused_tuples()) +
         " tuples reused from lower-order profiles (" +
         support::format_fixed(reuse_rate, 1) + "%), " +
         std::to_string(tuples.simulated_tuples()) + " simulated\n";
  if (tuples.sampled) {
    out += "  sampling:       seeded sample of " + std::to_string(tuples.total_tuples) +
           " / " + std::to_string(tuples.enumerated_tuples) +
           " tuples (--max-tuples " + std::to_string(tuples.max_tuples) + ", seed " +
           std::to_string(tuples.sample_seed) + ")\n";
  }
  if (!tuples.vulnerabilities.empty()) {
    const auto sites = tuples.patch_sites();
    out += "  patch sites:    ";
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i != 0) out += ", ";
      out += support::hex_string(sites[i]);
    }
    out += "\n";
  }

  out += outcome_table("tuple outcome", tuples.outcome_counts).render();
  if (tuples.vulnerabilities.empty()) {
    out += "no residual " + std::to_string(tuples.order) +
           "-tuple vulnerabilities.\n";
    return out;
  }
  out += vulnerable_tuple_table(tuples).render();
  return out;
}

std::string tuple_campaign_markdown_section(const std::string& binary_name,
                                            const sim::TupleCampaignResult& tuples) {
  std::string out = "### " + std::to_string(tuples.order) +
                    "-tuple fault campaign: " + binary_name + "\n\n";
  out += std::to_string(tuples.total_tuples) + " tuples within window " +
         std::to_string(tuples.pair_window) + " over " +
         std::to_string(tuples.trace_length) + " trace entries; **" +
         std::to_string(tuples.count(sim::Outcome::kSuccess)) + " successful**, " +
         std::to_string(tuples.strictly_higher_order().size()) +
         " invisible to order 1. Order-1 phase: " +
         std::to_string(tuples.order1.total_faults) + " faults, " +
         std::to_string(tuples.order1.count(sim::Outcome::kSuccess)) +
         " successful. Levels: " + tuple_level_summary_line(tuples) +
         ". Pruning: " + std::to_string(tuples.reused_tuples()) +
         " tuples reused from lower-order profiles, " +
         std::to_string(tuples.simulated_tuples()) + " simulated.";
  if (tuples.sampled) {
    out += " Sampling: " + std::to_string(tuples.total_tuples) + " / " +
           std::to_string(tuples.enumerated_tuples) + " tuples (max " +
           std::to_string(tuples.max_tuples) + ", seed " +
           std::to_string(tuples.sample_seed) + ").";
  }
  out += "\n\n";
  out += outcome_table("tuple outcome", tuples.outcome_counts).render_markdown();
  if (!tuples.vulnerabilities.empty()) {
    out += "\n" + vulnerable_tuple_table(tuples).render_markdown();
  }
  return out;
}

std::string fixpoint_section(const std::string& binary_name,
                             const patch::PipelineResult& result) {
  // Order-2+ runs get the full trajectory section; order-1 runs the same
  // table without the pair columns.
  if (result.order1_code_size != 0) return order2_fixpoint_section(binary_name, result);
  std::string out = "fix-point trajectory: " + binary_name + "\n";
  TextTable table;
  table.add_row({"iteration", "faults", "points", "patched", "unpatchable", "code bytes"});
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const patch::IterationReport& it = result.iterations[i];
    table.add_row({std::to_string(i), std::to_string(it.successful_faults),
                   std::to_string(it.vulnerable_points),
                   std::to_string(it.patches_applied),
                   std::to_string(it.unpatchable_points), std::to_string(it.code_size)});
  }
  out += table.render();
  out += "  fix-point: " + std::string(result.fixpoint ? "yes" : "NO (cap hit)") + "\n";
  out += "  code size: " + std::to_string(result.original_code_size) + " -> " +
         std::to_string(result.hardened_code_size) + " bytes (overhead " +
         support::format_fixed(result.overhead_percent(), 1) + "%)\n";
  return out;
}

std::string order2_fixpoint_section(const std::string& binary_name,
                                    const patch::PipelineResult& result) {
  const unsigned max_order = max_iteration_order(result);
  std::string out = "order-" + std::to_string(max_order) +
                    " fix-point trajectory: " + binary_name + "\n";

  TextTable table;
  table.add_row({"iteration", "order", "faults",
                 max_order >= 3 ? "sets" : "pairs", "sites", "patched",
                 "code bytes"});
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const patch::IterationReport& it = result.iterations[i];
    table.add_row({std::to_string(i), std::to_string(it.order),
                   std::to_string(it.successful_faults), residual_cell(it),
                   sites_cell(it), std::to_string(it.patches_applied),
                   std::to_string(it.code_size)});
  }
  out += table.render();

  out += "  fix-point: " + std::string(result.fixpoint ? "yes" : "NO (cap hit)") +
         ", order-2 clean: " + std::string(result.order2_fixpoint ? "yes" : "NO");
  if (max_order >= 3) {
    out += ", order-" + std::to_string(max_order) +
           " clean: " + std::string(result.orderk_fixpoint ? "yes" : "NO");
  }
  out += "\n";
  out += "  overhead (Table-V style): order-1 " +
         support::format_fixed(result.order1_overhead_percent(), 1) +
         "% -> order-2 " + support::format_fixed(result.overhead_percent(), 1) +
         "% (+" + support::format_fixed(result.order2_overhead_delta_percent(), 1) +
         " points for closing the order-2 gap)\n";
  if (max_order >= 3 && !result.order_milestones.empty()) {
    out += "  overhead vs k:  " + milestone_line(result) + "\n";
  }
  return out;
}

}  // namespace r2r::harden
