// r2r::harden — plain-text table rendering for benches and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace r2r::harden {

/// Fixed-width text table: first row is the header.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace r2r::harden
