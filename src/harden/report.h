// r2r::harden — plain-text table rendering for benches and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace r2r::sim {
struct CampaignResult;
struct PairCampaignResult;
struct TupleCampaignResult;
}  // namespace r2r::sim

namespace r2r::patch {
struct PipelineResult;
}  // namespace r2r::patch

namespace r2r::harden {

/// Fixed-width text table: first row is the header.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  [[nodiscard]] std::string render() const;
  /// GitHub-flavoured pipe table: compact (unpadded) cells with a `---`
  /// divider after the header — the `--markdown` rendering of every report
  /// surface, where the renderer handles alignment.
  [[nodiscard]] std::string render_markdown() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// The single-fault campaign section of a hardening report: outcome
/// counters, engine telemetry, and the vulnerable points merged by static
/// address — the text rendering of sim::CampaignResult.
std::string campaign_section(const std::string& binary_name,
                             const sim::CampaignResult& campaign);

/// Markdown renderings of the three report surfaces (same data as the text
/// sections, emitted as `###` headings + pipe tables) — what `r2r
/// --markdown` and the batch summary artifact are built from.
std::string campaign_markdown_section(const std::string& binary_name,
                                      const sim::CampaignResult& campaign);
std::string pair_campaign_markdown_section(const std::string& binary_name,
                                           const sim::PairCampaignResult& order2);
std::string tuple_campaign_markdown_section(const std::string& binary_name,
                                            const sim::TupleCampaignResult& tuples);
std::string fixpoint_markdown_section(const std::string& binary_name,
                                      const patch::PipelineResult& result);

/// The residual-double-fault section of a hardening report: what an order-2
/// campaign still finds on a binary after (single-fault) hardening —
/// outcome counters, prune telemetry, and the successful pairs that no
/// order-1 sweep can surface, merged by static address pair.
std::string residual_double_fault_section(const std::string& binary_name,
                                          const sim::PairCampaignResult& order2);

/// The residual-k-tuple section: what an order-k (k >= 3) campaign still
/// finds — the per-level reuse/sampling telemetry of the recursive sweep
/// and the successful k-tuples no order-1 sweep can surface, merged by
/// static address chain.
std::string residual_tuple_fault_section(const std::string& binary_name,
                                         const sim::TupleCampaignResult& tuples);

/// The fix-point trajectory section for a Faulter+Patcher run — the text
/// rendering of patch::PipelineResult. Order-2 runs (order1_code_size set)
/// delegate to order2_fixpoint_section; order-1 runs render the same
/// per-iteration table without the pair columns. Shared by `r2r fixpoint`
/// and the r2rd campaign service, so a daemon answer is byte-identical to
/// the one-shot subcommand's.
std::string fixpoint_section(const std::string& binary_name,
                             const patch::PipelineResult& result);

/// The order-2+ fix-point section of a hardening report: the per-iteration
/// trajectory of the ladder-aware Faulter+Patcher loop (campaign order,
/// faults and residual pairs/tuples found, implicated sites, patches
/// applied, code size) plus the Table-V-style overhead split — what order-1
/// hardening cost, and what closing each higher-order gap added on top.
/// Runs that climbed past order 2 get an extra order-k clean flag and the
/// overhead-vs-k milestone trajectory.
std::string order2_fixpoint_section(const std::string& binary_name,
                                    const patch::PipelineResult& result);

}  // namespace r2r::harden
