#include "harden/hybrid.h"

#include "ir/verifier.h"
#include "isa/target.h"
#include "obs/obs.h"
#include "passes/pass.h"
#include "support/error.h"

namespace r2r::harden {

HybridResult hybrid_harden(const elf::Image& input, const HybridConfig& config) {
  obs::Span run_span("harden.hybrid");
  obs::Metrics::instance().counter("harden.hybrid_runs").add(1);

  HybridResult result;
  result.original_code_size = input.code_size();

  // The round trip stays on the input's ISA: lift derives it from e_machine,
  // so lowering must emit for the same target.
  HybridConfig effective = config;
  {
    const auto arch = isa::arch_from_elf_machine(input.machine);
    support::check(arch.has_value(), support::ErrorKind::kElf,
                   "input image has an e_machine no registered target handles");
    effective.lower_options.arch = *arch;
  }

  lift::LiftResult lifted = [&] {
    obs::Span span("harden.lift");
    return lift::lift(input);
  }();
  ir::verify(lifted.module);

  if (effective.cleanup) {
    obs::Span span("harden.cleanup");
    passes::PassManager cleanup;
    cleanup.add(passes::make_state_promotion());
    cleanup.add(passes::make_global_store_elim());
    cleanup.add(passes::make_constant_fold());
    cleanup.add(passes::make_dce());
    cleanup.run_to_fixpoint(lifted.module);
    ir::verify(lifted.module);
  }

  result.ir_before = passes::count_ops(lifted.module);

  {
    obs::Span span("harden.countermeasure");
    switch (effective.countermeasure) {
      case HybridCountermeasure::kNone:
        break;
      case HybridCountermeasure::kBranchHardening: {
        passes::PassManager pm;
        pm.add(passes::make_call_guard());
        pm.add(passes::make_branch_hardening());
        pm.run(lifted.module);
        break;
      }
      case HybridCountermeasure::kInstructionDuplication: {
        passes::PassManager pm;
        pm.add(passes::make_instruction_duplication());
        pm.run(lifted.module);
        break;
      }
    }
  }
  ir::verify(lifted.module);
  result.ir_after = passes::count_ops(lifted.module);

  {
    obs::Span span("harden.lower");
    result.hardened =
        lower::lower_to_image(lifted.module, lifted.guest_data, effective.lower_options);
  }
  result.hardened_code_size = result.hardened.code_size();
  result.module = std::move(lifted.module);
  return result;
}

}  // namespace r2r::harden
