#include "bir/recover.h"

#include <algorithm>
#include <map>
#include <set>

#include "isa/decoder.h"
#include "isa/semantics.h"
#include "isa/target.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::bir {

namespace {

using support::check;
using support::ErrorKind;

struct RecoveryState {
  const elf::Image* image = nullptr;
  const isa::Target* target = nullptr;
  const elf::Segment* text = nullptr;
  std::map<std::uint64_t, isa::Decoded> decoded;
  std::set<std::uint64_t> code_label_addresses;
  std::set<std::uint64_t> data_label_addresses;

  [[nodiscard]] bool in_text(std::uint64_t address) const noexcept {
    return text->contains(address);
  }
  [[nodiscard]] const elf::Segment* data_segment_of(std::uint64_t address) const noexcept {
    const elf::Segment* segment = image->segment_containing(address);
    if (segment == nullptr || (segment->flags & elf::kExecute) != 0) return nullptr;
    return segment;
  }
};

/// Recursive-descent pass: decode every reachable instruction.
void explore(RecoveryState& state, std::uint64_t start) {
  std::vector<std::uint64_t> worklist{start};
  while (!worklist.empty()) {
    std::uint64_t address = worklist.back();
    worklist.pop_back();
    while (state.in_text(address) && !state.decoded.contains(address)) {
      const std::size_t offset = address - state.text->vaddr;
      const std::span<const std::uint8_t> window(state.text->data.data() + offset,
                                                 state.text->data.size() - offset);
      isa::Decoded decoded;
      try {
        decoded = state.target->decode(window, address);
      } catch (const support::Error& error) {
        support::fail(ErrorKind::kRecovery,
                      "undecodable instruction at " + support::hex_string(address) +
                          ": " + error.what());
      }
      const isa::Instruction& instr = decoded.instr;
      const std::uint64_t next = address + decoded.length;
      state.decoded.emplace(address, decoded);

      if (instr.mnemonic == isa::Mnemonic::kJmp || instr.mnemonic == isa::Mnemonic::kJcc ||
          instr.mnemonic == isa::Mnemonic::kCall) {
        const auto target = static_cast<std::uint64_t>(
            std::get<isa::ImmOperand>(instr.op(0)).value);
        check(state.in_text(target), ErrorKind::kRecovery,
              "branch target outside .text at " + support::hex_string(address));
        state.code_label_addresses.insert(target);
        worklist.push_back(target);
      }
      if (isa::is_terminator(instr)) break;
      address = next;
    }
  }
}

/// Notes data references found in one instruction's operands and rewrites
/// them to symbolic form (labels resolved at reassembly).
void symbolize(RecoveryState& state, isa::Instruction& instr) {
  if (instr.mnemonic == isa::Mnemonic::kJmp || instr.mnemonic == isa::Mnemonic::kJcc ||
      instr.mnemonic == isa::Mnemonic::kCall) {
    // Branch targets become labels in the caller (needs the label map).
    return;
  }
  for (isa::Operand& op : instr.operands) {
    if (auto* mem = std::get_if<isa::MemOperand>(&op)) {
      if (mem->rip_relative) {
        const auto target = static_cast<std::uint64_t>(mem->disp);
        check(state.data_segment_of(target) != nullptr, ErrorKind::kRecovery,
              "rip-relative reference to non-data address " + support::hex_string(target));
        state.data_label_addresses.insert(target);
        mem->label = "";  // filled by caller once label names exist
        continue;
      }
      if (!mem->base && !mem->index && mem->disp != 0) {
        const auto target = static_cast<std::uint64_t>(mem->disp);
        if (state.data_segment_of(target) != nullptr) {
          state.data_label_addresses.insert(target);
        }
      }
      continue;
    }
    if (auto* imm = std::get_if<isa::ImmOperand>(&op);
        imm != nullptr && instr.mnemonic == isa::Mnemonic::kMov &&
        instr.width == state.target->natural_width()) {
      // Full-width mov immediate pointing into a data segment: treat as a
      // reference (the UROBOROS-style heuristic; see DESIGN.md). On x64 this
      // is the movabs form; on rv32i the fused lui+addi mov.
      const auto value = static_cast<std::uint64_t>(imm->value);
      if (state.data_segment_of(value) != nullptr) {
        state.data_label_addresses.insert(value);
      }
    }
  }
}

}  // namespace

Module recover(const elf::Image& image) {
  obs::Span span("bir.recover");
  const auto arch = isa::arch_from_elf_machine(image.machine);
  check(arch.has_value(), ErrorKind::kRecovery,
        "image has an e_machine no registered target handles");
  RecoveryState state;
  state.image = &image;
  state.target = &isa::target(*arch);
  for (const auto& segment : image.segments) {
    if ((segment.flags & elf::kExecute) != 0) {
      check(state.text == nullptr, ErrorKind::kRecovery,
            "multiple executable segments are not supported");
      state.text = &segment;
    }
  }
  check(state.text != nullptr, ErrorKind::kRecovery, "no executable segment");

  // Seed exploration with the entry point and all code symbols.
  state.code_label_addresses.insert(image.entry);
  explore(state, image.entry);
  for (const auto& symbol : image.symbols) {
    if (symbol.is_code && state.in_text(symbol.value)) {
      state.code_label_addresses.insert(symbol.value);
      explore(state, symbol.value);
    }
  }

  // First symbolization sweep: collect referenced data addresses.
  for (auto& [address, decoded] : state.decoded) {
    symbolize(state, decoded.instr);
  }

  // --- name maps -------------------------------------------------------------
  std::map<std::uint64_t, std::string> code_names;
  std::map<std::uint64_t, std::string> data_names;
  for (const auto& symbol : image.symbols) {
    if (symbol.is_code) {
      code_names.emplace(symbol.value, symbol.name);
    } else {
      data_names.emplace(symbol.value, symbol.name);
    }
  }
  for (const std::uint64_t address : state.code_label_addresses) {
    code_names.try_emplace(address, "L_" + support::hex_string(address).substr(2));
  }
  for (const std::uint64_t address : state.data_label_addresses) {
    data_names.try_emplace(address, "D_" + support::hex_string(address).substr(2));
  }

  // --- build text items --------------------------------------------------------
  Module module;
  module.arch = *arch;
  module.text_base = state.text->vaddr;

  const std::uint64_t text_end = state.text->vaddr + state.text->data.size();
  std::uint64_t address = state.text->vaddr;
  while (address < text_end) {
    const auto it = state.decoded.find(address);
    if (it == state.decoded.end()) {
      // Unreached gap: preserve verbatim up to the next decoded address.
      std::uint64_t gap_end = text_end;
      const auto next = state.decoded.upper_bound(address);
      if (next != state.decoded.end()) gap_end = next->first;
      CodeItem item;
      if (const auto name = code_names.find(address); name != code_names.end()) {
        item.labels.push_back(name->second);
      }
      const std::size_t offset = address - state.text->vaddr;
      item.raw.assign(
          state.text->data.begin() + static_cast<std::ptrdiff_t>(offset),
          state.text->data.begin() + static_cast<std::ptrdiff_t>(offset + (gap_end - address)));
      item.address = address;
      module.text.push_back(std::move(item));
      address = gap_end;
      continue;
    }

    CodeItem item;
    item.address = address;
    if (const auto name = code_names.find(address); name != code_names.end()) {
      item.labels.push_back(name->second);
    }
    isa::Instruction instr = it->second.instr;

    // Rewrite branch targets and data references to symbolic form.
    if (instr.mnemonic == isa::Mnemonic::kJmp || instr.mnemonic == isa::Mnemonic::kJcc ||
        instr.mnemonic == isa::Mnemonic::kCall) {
      const auto target =
          static_cast<std::uint64_t>(std::get<isa::ImmOperand>(instr.op(0)).value);
      instr.operands[0] = isa::LabelOperand{code_names.at(target)};
    } else {
      for (isa::Operand& op : instr.operands) {
        if (auto* mem = std::get_if<isa::MemOperand>(&op)) {
          if (mem->rip_relative) {
            const auto target = static_cast<std::uint64_t>(mem->disp);
            mem->label = data_names.at(target);
            mem->disp = 0;
          } else if (!mem->base && !mem->index && mem->disp != 0) {
            const auto target = static_cast<std::uint64_t>(mem->disp);
            if (const auto name = data_names.find(target); name != data_names.end()) {
              mem->label = name->second;
              mem->disp = 0;
            }
          }
        } else if (auto* imm = std::get_if<isa::ImmOperand>(&op);
                   imm != nullptr && instr.mnemonic == isa::Mnemonic::kMov &&
                   instr.width == state.target->natural_width()) {
          const auto value = static_cast<std::uint64_t>(imm->value);
          if (const auto name = data_names.find(value); name != data_names.end()) {
            imm->label = name->second;
          }
        }
      }
    }
    item.instr = std::move(instr);
    module.text.push_back(std::move(item));
    address += it->second.length;
  }

  // --- data sections -----------------------------------------------------------
  for (const auto& segment : image.segments) {
    if ((segment.flags & elf::kExecute) != 0) continue;
    if (segment.name == "[stack]") continue;
    DataSection section;
    section.name = segment.name;
    section.flags = segment.flags;
    section.base = segment.vaddr;
    section.mem_size = segment.size_in_memory();

    // Split points: every named/referenced address inside this segment.
    std::set<std::uint64_t> cuts{segment.vaddr};
    for (const auto& [addr, name] : data_names) {
      if (segment.contains(addr) && addr < segment.vaddr + segment.data.size()) {
        cuts.insert(addr);
      }
    }
    std::vector<std::uint64_t> points(cuts.begin(), cuts.end());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint64_t begin = points[i];
      const std::uint64_t end =
          i + 1 < points.size() ? points[i + 1] : segment.vaddr + segment.data.size();
      DataBlock block;
      block.address = begin;
      if (const auto name = data_names.find(begin); name != data_names.end()) {
        block.labels.push_back(name->second);
      }
      const std::size_t offset = begin - segment.vaddr;
      block.bytes.assign(segment.data.begin() + static_cast<std::ptrdiff_t>(offset),
                         segment.data.begin() + static_cast<std::ptrdiff_t>(offset + (end - begin)));
      section.blocks.push_back(std::move(block));
    }
    module.data_sections.push_back(std::move(section));
  }

  // --- entry + globals ------------------------------------------------------------
  module.entry_symbol = code_names.at(image.entry);
  for (const auto& symbol : image.symbols) {
    if (symbol.global) module.globals.push_back(symbol.name);
  }
  if (module.globals.empty()) module.globals.push_back(module.entry_symbol);
  return module;
}

}  // namespace r2r::bir
