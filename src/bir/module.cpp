#include "bir/module.h"

#include "elf/image.h"
#include "support/error.h"

namespace r2r::bir {

namespace {
using support::check;
using support::ErrorKind;
}  // namespace

std::optional<std::size_t> Module::index_of_address(std::uint64_t address) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i].is_instruction() && text[i].address == address) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Module::index_of_label(std::string_view label) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i].has_label(label)) return i;
  }
  return std::nullopt;
}

bool Module::has_symbol(std::string_view name) const {
  if (index_of_label(name).has_value()) return true;
  for (const auto& section : data_sections) {
    for (const auto& block : section.blocks) {
      for (const auto& label : block.labels) {
        if (label == name) return true;
      }
    }
  }
  return false;
}

void Module::insert_before(std::size_t index, std::vector<isa::Instruction> instrs,
                           bool take_labels) {
  check(index <= text.size(), ErrorKind::kInvalidArgument, "insert_before out of range");
  std::vector<CodeItem> items;
  items.reserve(instrs.size());
  for (auto& instr : instrs) {
    CodeItem item;
    item.instr = std::move(instr);
    items.push_back(std::move(item));
  }
  if (take_labels && index < text.size() && !items.empty()) {
    items.front().labels = std::move(text[index].labels);
    text[index].labels.clear();
  }
  text.insert(text.begin() + static_cast<std::ptrdiff_t>(index),
              std::make_move_iterator(items.begin()), std::make_move_iterator(items.end()));
}

void Module::insert_after(std::size_t index, std::vector<isa::Instruction> instrs) {
  check(index < text.size(), ErrorKind::kInvalidArgument, "insert_after out of range");
  insert_before(index + 1, std::move(instrs), /*take_labels=*/false);
}

void Module::replace(std::size_t index, std::vector<isa::Instruction> instrs) {
  check(index < text.size(), ErrorKind::kInvalidArgument, "replace out of range");
  check(!instrs.empty(), ErrorKind::kInvalidArgument, "replacement must not be empty");
  std::vector<std::string> labels = std::move(text[index].labels);
  text.erase(text.begin() + static_cast<std::ptrdiff_t>(index));
  insert_before(index, std::move(instrs), /*take_labels=*/false);
  text[index].labels = std::move(labels);
}

void Module::append_block(const std::string& label, std::vector<isa::Instruction> instrs) {
  const std::size_t index = text.size();
  insert_before(index, std::move(instrs), /*take_labels=*/false);
  if (index < text.size()) text[index].labels.push_back(label);
}

void Module::add_label(std::size_t index, std::string label) {
  check(index < text.size(), ErrorKind::kInvalidArgument, "add_label out of range");
  if (!text[index].has_label(label)) text[index].labels.push_back(std::move(label));
}

std::string Module::label_for_index(std::size_t index) {
  check(index < text.size(), ErrorKind::kInvalidArgument, "label_for_index out of range");
  if (!text[index].labels.empty()) return text[index].labels.front();
  std::string label = fresh_label("anon");
  text[index].labels.push_back(label);
  return label;
}

std::string Module::fresh_label(const std::string& prefix) {
  while (true) {
    std::string candidate = ".r2r_" + prefix + "_" + std::to_string(label_counter_++);
    if (!has_symbol(candidate)) return candidate;
  }
}

std::size_t Module::instruction_count() const noexcept {
  std::size_t count = 0;
  for (const auto& item : text) {
    if (item.is_instruction()) ++count;
  }
  return count;
}

Module from_source(const isa::SourceProgram& program, isa::Arch arch) {
  Module module;
  module.arch = arch;
  module.globals = program.globals;

  std::uint64_t next_data_base = 0x600000;
  for (const auto& section : program.sections) {
    if (section.name == ".text") {
      for (const auto& item : section.items) {
        CodeItem code;
        code.labels = item.labels;
        code.source_line = item.line;
        if (item.is_instruction()) {
          code.instr = *item.instr;
        } else if (!item.data.empty()) {
          code.raw = item.data;
        } else if (item.labels.empty() && item.align == 0) {
          continue;
        }
        // Alignment inside .text is ignored (no perf implications in the
        // emulator); raw/labels-only items are kept.
        module.text.push_back(std::move(code));
      }
      continue;
    }
    DataSection data;
    data.name = section.name;
    data.flags = elf::kRead | elf::kWrite;
    data.base = next_data_base;
    next_data_base += 0x100000;
    for (const auto& item : section.items) {
      DataBlock block;
      block.labels = item.labels;
      block.bytes = item.data;
      block.symbol_refs = item.data_symbol_refs;
      block.align = item.align;
      block.source_line = item.line;
      data.blocks.push_back(std::move(block));
    }
    module.data_sections.push_back(std::move(data));
  }

  if (!program.globals.empty()) module.entry_symbol = program.globals.front();
  return module;
}

Module module_from_assembly(std::string_view text, isa::Arch arch) {
  return from_source(isa::target(arch).parse_assembly(text), arch);
}

}  // namespace r2r::bir
