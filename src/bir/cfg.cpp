#include "bir/cfg.h"

#include <set>

#include "isa/printer.h"
#include "isa/semantics.h"
#include "support/error.h"

namespace r2r::bir {

std::optional<std::size_t> Cfg::block_of_item(std::size_t item_index) const {
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (item_index >= blocks[b].first_item && item_index <= blocks[b].last_item) return b;
  }
  return std::nullopt;
}

std::optional<std::size_t> Cfg::block_of_label(const Module& module,
                                               std::string_view label) const {
  const auto index = module.index_of_label(label);
  if (!index) return std::nullopt;
  return block_of_item(*index);
}

Cfg build_cfg(const Module& module) {
  Cfg cfg;
  if (module.text.empty()) return cfg;

  // --- find leaders -----------------------------------------------------------
  std::set<std::size_t> leaders{0};
  for (std::size_t i = 0; i < module.text.size(); ++i) {
    const CodeItem& item = module.text[i];
    if (!item.labels.empty()) leaders.insert(i);
    const bool is_raw = !item.is_instruction();
    if (is_raw) {
      leaders.insert(i);
      if (i + 1 < module.text.size()) leaders.insert(i + 1);
      continue;
    }
    if (isa::is_terminator(*item.instr) || isa::is_cond_branch(*item.instr)) {
      if (i + 1 < module.text.size()) leaders.insert(i + 1);
    }
  }

  // --- block ranges -------------------------------------------------------------
  std::vector<std::size_t> leader_list(leaders.begin(), leaders.end());
  for (std::size_t b = 0; b < leader_list.size(); ++b) {
    BasicBlock block;
    block.first_item = leader_list[b];
    block.last_item =
        (b + 1 < leader_list.size() ? leader_list[b + 1] : module.text.size()) - 1;
    block.is_raw = !module.text[block.first_item].is_instruction();
    cfg.blocks.push_back(block);
  }

  const auto block_of = [&cfg](std::size_t item) -> std::size_t {
    const auto found = cfg.block_of_item(item);
    support::require(found.has_value(), "item outside any block");
    return *found;
  };

  // --- successors -----------------------------------------------------------------
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    if (block.is_raw) continue;
    const CodeItem& last = module.text[block.last_item];
    if (!last.is_instruction()) continue;
    const isa::Instruction& instr = *last.instr;

    const auto add_label_successor = [&](const std::string& label) {
      const auto target = module.index_of_label(label);
      if (target) block.successors.push_back(block_of(*target));
    };

    switch (instr.mnemonic) {
      case isa::Mnemonic::kJmp:
        if (isa::is_label(instr.op(0))) {
          add_label_successor(std::get<isa::LabelOperand>(instr.op(0)).name);
        }
        break;
      case isa::Mnemonic::kJcc:
        if (isa::is_label(instr.op(0))) {
          add_label_successor(std::get<isa::LabelOperand>(instr.op(0)).name);
        }
        if (block.last_item + 1 < module.text.size()) {
          block.successors.push_back(block_of(block.last_item + 1));
        }
        break;
      case isa::Mnemonic::kJmpReg:
        block.ends_in_indirect = true;
        break;
      case isa::Mnemonic::kRet:
      case isa::Mnemonic::kHlt:
      case isa::Mnemonic::kUd2:
      case isa::Mnemonic::kInt3:
        break;
      default:
        // Calls and straight-line code fall through.
        if (block.last_item + 1 < module.text.size()) {
          block.successors.push_back(block_of(block.last_item + 1));
        }
        break;
    }
  }
  return cfg;
}

std::string to_dot(const Module& module, const Cfg& cfg) {
  std::string out = "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    std::string label;
    for (const std::string& name : module.text[block.first_item].labels) {
      label += name + ":\\l";
    }
    for (std::size_t i = block.first_item; i <= block.last_item; ++i) {
      const CodeItem& item = module.text[i];
      if (item.is_instruction()) {
        label += isa::print(*item.instr) + "\\l";
      } else {
        label += "<" + std::to_string(item.raw.size()) + " raw bytes>\\l";
      }
    }
    out += "  b" + std::to_string(b) + " [label=\"" + label + "\"];\n";
    for (const std::size_t succ : block.successors) {
      out += "  b" + std::to_string(b) + " -> b" + std::to_string(succ) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace r2r::bir
