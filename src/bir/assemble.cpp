#include "bir/assemble.h"

#include <map>

#include "isa/encoder.h"
#include "isa/printer.h"
#include "isa/target.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::bir {

namespace {

using support::check;
using support::ErrorKind;

using SymbolMap = std::map<std::string, std::uint64_t, std::less<>>;

/// " (line N: <instr>)" context for layout errors, empty when the item was
/// synthesized (no source line to point at).
std::string item_context(const CodeItem& item, const isa::Target& target) {
  std::string context;
  if (item.source_line != 0) {
    context = " (line " + std::to_string(item.source_line);
    if (item.is_instruction()) context += ": " + target.print(*item.instr);
    context += ")";
  } else if (item.is_instruction()) {
    context = " (in " + target.print(*item.instr) + ")";
  }
  return context;
}

/// Resolves data-symbol references in an instruction's operands.
/// Text-label branch targets become ImmOperand{address-or-placeholder}.
/// `item` is the referencing item; errors cite its source line (the
/// context string is only built on the failure path).
isa::Instruction resolve(const isa::Instruction& instr, const SymbolMap& symbols,
                         std::uint64_t placeholder_for_unknown, bool allow_unknown,
                         const CodeItem& item, const isa::Target& target) {
  // Error messages (and the item context) are only built on the failure
  // path — resolve() runs for every instruction of every assemble() pass.
  const auto fail_item = [&item, &target](const std::string& message) {
    support::fail(ErrorKind::kRewrite, message + item_context(item, target));
  };
  isa::Instruction out = instr;
  for (isa::Operand& op : out.operands) {
    if (auto* label = std::get_if<isa::LabelOperand>(&op)) {
      const auto it = symbols.find(label->name);
      if (it != symbols.end()) {
        op = isa::ImmOperand{static_cast<std::int64_t>(it->second), label->name};
      } else {
        if (!allow_unknown) fail_item("undefined label: '" + label->name + "'");
        op = isa::ImmOperand{static_cast<std::int64_t>(placeholder_for_unknown), {}};
      }
      continue;
    }
    if (auto* mem = std::get_if<isa::MemOperand>(&op); mem != nullptr && !mem->label.empty()) {
      const auto it = symbols.find(mem->label);
      if (it == symbols.end()) {
        fail_item("undefined symbol in memory operand: '" + mem->label +
                  "' (data symbols must be laid out before code)");
      }
      if (mem->rip_relative) {
        mem->disp = static_cast<std::int64_t>(it->second) + mem->disp;
      } else {
        mem->disp += static_cast<std::int64_t>(it->second);
      }
      mem->label.clear();
      continue;
    }
    if (auto* imm = std::get_if<isa::ImmOperand>(&op); imm != nullptr && !imm->label.empty()) {
      const auto it = symbols.find(imm->label);
      if (it != symbols.end()) {
        imm->value = static_cast<std::int64_t>(it->second);
        // Known symbols resolve to the same value in the sizing and final
        // passes (data bases are fixed), so any instruction may use them;
        // keep the label only for mov, where it forces the fixed-size
        // movabs form.
        if (instr.mnemonic != isa::Mnemonic::kMov) imm->label.clear();
      } else {
        if (!allow_unknown) {
          fail_item("undefined symbol in immediate: '" + imm->label + "'");
        }
        // An unknown (not-yet-laid-out text) symbol would make the encoding
        // size depend on its final value; only movabs is size-stable.
        if (instr.mnemonic != isa::Mnemonic::kMov) {
          fail_item(
              "forward symbol immediates are only supported in mov (movabs) "
              "context");
        }
      }
    }
  }
  return out;
}

}  // namespace

elf::Image assemble(Module& module) {
  obs::Span span("bir.assemble");
  const isa::Target& target = isa::target(module.arch);
  SymbolMap symbols;
  const auto define = [&symbols](const std::string& name, std::uint64_t address) {
    const auto [it, inserted] = symbols.emplace(name, address);
    check(inserted || it->second == address, ErrorKind::kRewrite,
          "duplicate symbol: " + name);
  };

  // --- data layout (bases are fixed, so this is final) ----------------------
  for (DataSection& section : module.data_sections) {
    std::uint64_t cursor = section.base;
    for (DataBlock& block : section.blocks) {
      if (block.align > 1) {
        cursor = (cursor + block.align - 1) & ~(block.align - 1);
      }
      block.address = cursor;
      for (const std::string& label : block.labels) define(label, cursor);
      cursor += block.bytes.size();
    }
  }

  // --- text sizing pass ------------------------------------------------------
  std::uint64_t cursor = module.text_base;
  for (CodeItem& item : module.text) {
    item.address = cursor;
    for (const std::string& label : item.labels) define(label, cursor);
    if (item.is_instruction()) {
      // Unknown (text) labels use the current address as a placeholder;
      // branch sizes are rel32 and independent of the distance.
      const isa::Instruction sized =
          resolve(*item.instr, symbols, cursor, true, item, target);
      cursor += target.encoded_length(sized, item.address);
    } else {
      cursor += item.raw.size();
    }
  }

  // --- final encode ------------------------------------------------------------
  std::vector<std::uint8_t> text_bytes;
  text_bytes.reserve(static_cast<std::size_t>(cursor - module.text_base));
  for (const CodeItem& item : module.text) {
    if (item.is_instruction()) {
      const isa::Instruction final_instr =
          resolve(*item.instr, symbols, 0, false, item, target);
      const std::vector<std::uint8_t> bytes = target.encode(final_instr, item.address);
      check(module.text_base + text_bytes.size() == item.address, ErrorKind::kRewrite,
            "layout drift at " + target.print(*item.instr));
      text_bytes.insert(text_bytes.end(), bytes.begin(), bytes.end());
    } else {
      text_bytes.insert(text_bytes.end(), item.raw.begin(), item.raw.end());
    }
  }

  // --- image assembly ------------------------------------------------------------
  elf::Image image;
  image.machine = isa::elf_machine(module.arch);
  elf::Segment text_segment;
  text_segment.name = ".text";
  text_segment.vaddr = module.text_base;
  text_segment.flags = elf::kRead | elf::kExecute;
  text_segment.data = std::move(text_bytes);
  image.segments.push_back(std::move(text_segment));

  for (const DataSection& section : module.data_sections) {
    elf::Segment segment;
    segment.name = section.name;
    segment.vaddr = section.base;
    segment.flags = section.flags != 0 ? section.flags : (elf::kRead | elf::kWrite);
    std::uint64_t end = section.base;
    for (const DataBlock& block : section.blocks) end = block.address + block.bytes.size();
    segment.data.assign(static_cast<std::size_t>(end - section.base), 0);
    for (const DataBlock& block : section.blocks) {
      std::copy(block.bytes.begin(), block.bytes.end(),
                segment.data.begin() +
                    static_cast<std::ptrdiff_t>(block.address - section.base));
      for (const auto& [offset, symbol] : block.symbol_refs) {
        const auto it = symbols.find(symbol);
        check(it != symbols.end(), ErrorKind::kRewrite,
              "undefined symbol in data: '" + symbol + "'" +
                  (block.source_line != 0
                       ? " (line " + std::to_string(block.source_line) + ")"
                       : ""));
        const std::size_t at = block.address - section.base + offset;
        for (int i = 0; i < 8; ++i) {
          segment.data[at + static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(it->second >> (8 * i));
        }
      }
    }
    segment.mem_size = section.mem_size > segment.data.size() ? section.mem_size
                                                              : segment.data.size();
    image.segments.push_back(std::move(segment));
  }

  // --- symbols + entry -------------------------------------------------------------
  const auto is_global = [&module](const std::string& name) {
    for (const auto& g : module.globals) {
      if (g == name) return true;
    }
    return false;
  };
  for (const CodeItem& item : module.text) {
    for (const std::string& label : item.labels) {
      image.symbols.push_back(elf::Symbol{label, item.address, is_global(label), true});
    }
  }
  for (const DataSection& section : module.data_sections) {
    for (const DataBlock& block : section.blocks) {
      for (const std::string& label : block.labels) {
        image.symbols.push_back(elf::Symbol{label, block.address, is_global(label), false});
      }
    }
  }

  const auto entry = symbols.find(module.entry_symbol);
  check(entry != symbols.end(), ErrorKind::kRewrite,
        "entry symbol not defined: " + module.entry_symbol);
  image.entry = entry->second;
  return image;
}

}  // namespace r2r::bir
