// r2r::bir — relocatable binary IR ("reassembleable disassembly").
//
// This layer plays the role GTIRB + Ddisasm play in the paper: a binary is
// recovered into a Module whose code is a list of labelled, symbolized
// instructions that can be edited (countermeasures inlined) and assembled
// back into a working ELF executable.
//
// Design note: data sections keep their original base addresses across
// rewriting (only .text is re-laid-out), so values stored *inside* data
// never need symbolization — this sidesteps the UROBOROS/Ramblr
// false-positive problem the paper describes in Section III-C, and is
// faithful to the Faulter+Patcher goal of keeping the original structure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/asm_parser.h"
#include "isa/instruction.h"
#include "isa/target.h"

namespace r2r::bir {

/// One element of the text stream: an instruction or raw bytes (recovered
/// padding / data-in-text), optionally labelled.
struct CodeItem {
  std::vector<std::string> labels;
  std::optional<isa::Instruction> instr;
  std::vector<std::uint8_t> raw;       ///< used when instr is empty
  std::uint64_t address = 0;           ///< assigned by the last assemble()
  bool synthesized = false;  ///< inserted by a countermeasure (never re-patched)
  /// 1-based source line when the item came from assembly text (0 for
  /// recovered or synthesized items); assemble() errors cite it.
  std::size_t source_line = 0;

  [[nodiscard]] bool is_instruction() const noexcept { return instr.has_value(); }
  [[nodiscard]] bool has_label(std::string_view name) const noexcept {
    for (const auto& label : labels) {
      if (label == name) return true;
    }
    return false;
  }
};

/// Labelled blob inside a data section.
struct DataBlock {
  std::vector<std::string> labels;
  std::vector<std::uint8_t> bytes;
  /// 8-byte slots at (offset) patched with the named symbol's address.
  std::vector<std::pair<std::size_t, std::string>> symbol_refs;
  std::uint64_t align = 0;
  std::uint64_t address = 0;  ///< assigned by the last assemble()
  std::size_t source_line = 0;  ///< 1-based source line (0 = synthesized)
};

struct DataSection {
  std::string name = ".data";
  std::uint32_t flags = 0;     ///< elf::SegmentFlags
  std::uint64_t base = 0;      ///< fixed virtual base
  std::uint64_t mem_size = 0;  ///< optional bss tail (>= laid-out size)
  std::vector<DataBlock> blocks;
};

class Module {
 public:
  /// Instruction set of the code in `text`. assemble()/print paths dispatch
  /// through isa::target(arch); recovery derives it from the ELF e_machine.
  isa::Arch arch = isa::Arch::kX64;
  std::vector<CodeItem> text;
  std::uint64_t text_base = 0x400000;
  std::vector<DataSection> data_sections;
  std::string entry_symbol = "_start";
  std::vector<std::string> globals;

  /// Index of the instruction item currently assembled at `address`.
  [[nodiscard]] std::optional<std::size_t> index_of_address(std::uint64_t address) const;

  /// Index of the item carrying `label`.
  [[nodiscard]] std::optional<std::size_t> index_of_label(std::string_view label) const;

  /// True if any code/data label with this name exists.
  [[nodiscard]] bool has_symbol(std::string_view name) const;

  /// Inserts instructions before `index`. When `take_labels` is set the
  /// anchor's labels move onto the first inserted instruction so incoming
  /// control flow executes the insertion first.
  void insert_before(std::size_t index, std::vector<isa::Instruction> instrs,
                     bool take_labels);

  /// Inserts instructions after `index`.
  void insert_after(std::size_t index, std::vector<isa::Instruction> instrs);

  /// Replaces the instruction at `index` with `instrs`; labels stay on the
  /// first replacement instruction.
  void replace(std::size_t index, std::vector<isa::Instruction> instrs);

  /// Appends a labelled instruction sequence at the end of .text.
  void append_block(const std::string& label, std::vector<isa::Instruction> instrs);

  /// Attaches a label to the item at `index`.
  void add_label(std::size_t index, std::string label);

  /// Returns a label for the item at `index`, creating one if necessary.
  std::string label_for_index(std::size_t index);

  /// Generates a fresh label with the given prefix (".r2r_<prefix>_<n>").
  std::string fresh_label(const std::string& prefix);

  /// Number of instruction items (ignoring raw blobs).
  [[nodiscard]] std::size_t instruction_count() const noexcept;

 private:
  unsigned label_counter_ = 0;
};

/// Converts the text-assembler output into a Module for `arch`.
Module from_source(const isa::SourceProgram& program,
                   isa::Arch arch = isa::Arch::kX64);

/// Parses assembly text straight into a Module (parse + from_source) using
/// the target's register syntax.
Module module_from_assembly(std::string_view text,
                            isa::Arch arch = isa::Arch::kX64);

}  // namespace r2r::bir
