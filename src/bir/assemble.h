// r2r::bir — layout + encoding: Module -> ELF image.
#pragma once

#include "bir/module.h"
#include "elf/image.h"

namespace r2r::bir {

/// Lays out .text at module.text_base, resolves every symbolic operand,
/// encodes, and produces a runnable ELF image. Assigned addresses are
/// written back into the module (CodeItem::address, DataBlock::address) so
/// later passes can map machine addresses to items.
///
/// Layout is single-pass-stable by construction: every label-dependent
/// encoding has a fixed size (branches are always rel32, symbol immediates
/// are always movabs imm64, data-symbol displacements resolve before text
/// sizing because data bases are fixed).
elf::Image assemble(Module& module);

}  // namespace r2r::bir
