// r2r::bir — structural recovery: ELF image -> editable Module.
//
// This is the Ddisasm-equivalent step: recursive-descent disassembly from
// the entry point and every code symbol, gap preservation as raw bytes,
// and symbolization of code targets and data references so the recovered
// module can be edited and reassembled at a different layout.
#pragma once

#include "bir/module.h"
#include "elf/image.h"

namespace r2r::bir {

/// Recovers a Module from an executable image. Throws Error{kRecovery} if
/// the image has no executable segment or decoding reaches an impossible
/// state. Symbol names from the image's symtab are reused; synthesized
/// labels use "L_<hex>" (code) and "D_<hex>" (data).
Module recover(const elf::Image& image);

}  // namespace r2r::bir
