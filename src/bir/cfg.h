// r2r::bir — control-flow graph over a Module's text stream.
//
// Blocks are ranges of item indices. Call edges are not successors (calls
// are treated as straight-line, like most binary CFGs); returns and
// indirect jumps terminate blocks with no static successors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bir/module.h"

namespace r2r::bir {

struct BasicBlock {
  std::size_t first_item = 0;
  std::size_t last_item = 0;  ///< inclusive
  std::vector<std::size_t> successors;
  bool ends_in_indirect = false;
  bool is_raw = false;  ///< block of raw (non-instruction) bytes

  [[nodiscard]] std::size_t size() const noexcept { return last_item - first_item + 1; }
};

class Cfg {
 public:
  std::vector<BasicBlock> blocks;

  [[nodiscard]] std::optional<std::size_t> block_of_item(std::size_t item_index) const;
  [[nodiscard]] std::optional<std::size_t> block_of_label(const Module& module,
                                                          std::string_view label) const;
};

/// Builds the CFG. Leaders: item 0, every labelled item, and every item
/// following a terminator or conditional branch.
Cfg build_cfg(const Module& module);

/// Graphviz rendering (block per node, one instruction per line).
std::string to_dot(const Module& module, const Cfg& cfg);

}  // namespace r2r::bir
