// r2r lift — assembly/guest -> BIR listing (reassembleable disassembly) or
// compiler-IR dump: the inspection entry point of the pipeline.
#include <ostream>

#include "bir/assemble.h"
#include "bir/recover.h"
#include "cli/cli.h"
#include "ir/printer.h"
#include "isa/printer.h"
#include "isa/target.h"
#include "lift/lifter.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

ArgParser make_lift_parser() {
  ArgParser parser(
      "lift", "<guest>",
      "Build the guest and print its recovered binary IR — the labelled,\n"
      "symbolized instruction listing the patcher edits — or, with --ir, the\n"
      "compiler IR the Hybrid approach hardens.");
  parser.add_flag({"--ir", "", "print the lifted compiler IR instead of the BIR listing",
                   ""});
  add_guest_flags(parser);
  // Listings are already text, so lift takes --out without --format.
  parser.add_flag({"--out", "FILE", "write the listing to FILE instead of stdout", ""});
  return parser;
}

namespace {

std::string bir_listing(const guests::Guest& guest, const elf::Image& image,
                        bir::Module& module) {
  const isa::Target& target = isa::target(module.arch);
  std::string out = "; r2r lift — " + guest.name + ": " +
                    std::to_string(module.instruction_count()) + " instruction(s), " +
                    std::to_string(image.code_size()) + " code bytes, entry " +
                    support::hex_string(image.entry) + "\n";
  for (const bir::CodeItem& item : module.text) {
    for (const std::string& label : item.labels) out += label + ":\n";
    if (item.is_instruction()) {
      out += "  " + support::hex_string(item.address) + "  " + target.print(*item.instr) +
             "\n";
    } else if (!item.raw.empty()) {
      out += "  " + support::hex_string(item.address) + "  .byte <" +
             std::to_string(item.raw.size()) + " raw byte(s)>\n";
    }
  }
  return out;
}

}  // namespace

int run_lift(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 1) {
    err << "r2r lift: expected exactly one guest spec (try 'r2r lift --help')\n";
    return 2;
  }
  const guests::Guest guest = load_guest(args.positionals()[0], overrides_from(args));
  const elf::Image image = guests::build_image(guest);

  std::string text;
  if (args.has("--ir")) {
    const lift::LiftResult lifted = lift::lift(image);
    text = "; r2r lift --ir — " + guest.name + "\n" + ir::print(lifted.module);
  } else {
    bir::Module module = bir::recover(image);
    bir::assemble(module);  // assign addresses for the listing
    text = bir_listing(guest, image, module);
  }
  emit_output(args, out, text);
  return 0;
}

}  // namespace r2r::cli
