#include "cli/args.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

ArgParser::ArgParser(std::string command, std::string usage_suffix, std::string summary)
    : command_(std::move(command)),
      usage_suffix_(std::move(usage_suffix)),
      summary_(std::move(summary)) {}

void ArgParser::add_flag(FlagSpec spec) { flags_.push_back(std::move(spec)); }

const FlagSpec* ArgParser::find(std::string_view name) const {
  for (const FlagSpec& spec : flags_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return;
    }
    if (arg.size() < 2 || arg[0] != '-' || arg == "-" || arg == "--") {
      positionals_.push_back(arg);
      continue;
    }

    std::string name = arg;
    std::optional<std::string> attached;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        attached = arg.substr(eq + 1);
      }
    } else {
      // Single-dash flags ("-j") accept the attached form ("-j8").
      name = arg.substr(0, 2);
      if (arg.size() > 2) attached = arg.substr(2);
    }

    const FlagSpec* spec = find(name);
    if (spec == nullptr) {
      fail(ErrorKind::kInvalidArgument,
           "unknown flag '" + arg + "' for 'r2r " + command_ + "' (try 'r2r " +
               command_ + " --help')");
    }
    if (spec->value_name.empty()) {
      if (attached.has_value()) {
        fail(ErrorKind::kInvalidArgument,
             "flag '" + name + "' of 'r2r " + command_ + "' takes no value");
      }
      values_.emplace_back(name, "");
      continue;
    }
    if (!attached.has_value()) {
      if (i + 1 >= args.size()) {
        fail(ErrorKind::kInvalidArgument, "flag '" + name + "' of 'r2r " + command_ +
                                              "' needs a " + spec->value_name + " value");
      }
      attached = args[++i];
    }
    values_.emplace_back(name, *attached);
  }
}

bool ArgParser::has(std::string_view flag) const {
  return std::any_of(values_.begin(), values_.end(),
                     [&](const auto& entry) { return entry.first == flag; });
}

std::optional<std::string> ArgParser::value(std::string_view flag) const {
  // Last occurrence wins, so batch invocations can override forwarded
  // defaults by appending.
  for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
    if (it->first == flag) return it->second;
  }
  return std::nullopt;
}

std::string ArgParser::value_or(std::string_view flag, std::string fallback) const {
  if (auto v = value(flag)) return *v;
  return fallback;
}

std::uint64_t ArgParser::uint_or(std::string_view flag, std::uint64_t fallback) const {
  const auto v = value(flag);
  if (!v.has_value()) return fallback;
  const auto parsed = support::parse_integer(*v);
  if (!parsed.has_value() || *parsed < 0) {
    fail(ErrorKind::kInvalidArgument, "flag '" + std::string(flag) + "' of 'r2r " +
                                          command_ + "' needs a non-negative integer, got '" +
                                          *v + "'");
  }
  return static_cast<std::uint64_t>(*parsed);
}

std::uint64_t ArgParser::count_or(std::string_view flag, std::uint64_t fallback,
                                  std::uint64_t max) const {
  const auto v = value(flag);
  if (!v.has_value()) return fallback;
  const auto parsed = support::parse_integer(*v);
  if (!parsed.has_value() || *parsed < 0 || static_cast<std::uint64_t>(*parsed) > max) {
    fail(ErrorKind::kInvalidArgument, "flag '" + std::string(flag) + "' of 'r2r " +
                                          command_ + "' needs an integer in [0, " +
                                          std::to_string(max) + "], got '" + *v + "'");
  }
  return static_cast<std::uint64_t>(*parsed);
}

std::string ArgParser::help() const {
  std::string out = "usage: r2r " + command_;
  if (!usage_suffix_.empty()) out += " " + usage_suffix_;
  if (!flags_.empty()) out += " [flags]";
  out += "\n\n" + summary_ + "\n";
  if (flags_.empty()) return out;

  out += "\nflags:\n";
  std::size_t column = 0;
  for (const FlagSpec& spec : flags_) {
    std::size_t width = spec.name.size();
    if (!spec.value_name.empty()) width += 1 + spec.value_name.size();
    column = std::max(column, width);
  }
  column += 4;  // two-space indent + at least two spaces before the help
  for (const FlagSpec& spec : flags_) {
    std::string head = "  " + spec.name;
    if (!spec.value_name.empty()) head += " " + spec.value_name;
    head += std::string(column - head.size() + 2, ' ');
    std::string text = spec.help;
    if (!spec.default_text.empty()) text += " [default: " + spec.default_text + "]";
    // '\n' in the help continues at the help column.
    std::string line;
    for (const char c : text) {
      if (c == '\n') {
        out += head + line + "\n";
        head.assign(column + 2, ' ');
        line.clear();
      } else {
        line += c;
      }
    }
    out += head + line + "\n";
  }
  return out;
}

}  // namespace r2r::cli
