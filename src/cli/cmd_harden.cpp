// r2r harden — guest -> hardened ELF on disk, via either of the paper's
// two approaches: the Faulter+Patcher patterns (--patterns, Fig. 2) or the
// Hybrid lift -> countermeasure pass -> lower chain (--hybrid, Fig. 3).
// Behaviour is re-verified in the emulator before the ELF is written.
#include <ostream>

#include "cli/cli.h"
#include "elf/image.h"
#include "emu/machine.h"
#include "harden/hybrid.h"
#include "patch/pipeline.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

ArgParser make_harden_parser() {
  ArgParser parser(
      "harden", "<guest>",
      "Harden the guest and write a loadable ELF64 executable. --hybrid\n"
      "(default) runs lift -> cleanup passes -> countermeasure pass -> lower;\n"
      "--patterns runs the Faulter+Patcher loop with the paper's local\n"
      "protection patterns (honours the campaign flags, including --order).\n"
      "The hardened binary is re-run on both inputs; a behaviour change\n"
      "fails the command before anything is written.");
  parser.add_flag({"--hybrid", "", "use the Hybrid compiler-binary approach (Fig. 3)",
                   ""});
  parser.add_flag({"--patterns", "", "use the Faulter+Patcher patterns (Fig. 2)", ""});
  parser.add_flag({"--countermeasure", "NAME",
                   "--hybrid pass: branch-hardening, instruction-duplication, or none",
                   "branch-hardening"});
  parser.add_flag({"--no-cleanup", "",
                   "--hybrid: skip the state-promotion/folding/DCE cleanup passes", ""});
  parser.add_flag({"--out", "FILE", "output path", "<guest>_hardened.elf"});
  add_campaign_flags(parser);
  parser.add_flag({"--max-iterations", "N", "--patterns: iteration cap", "12"});
  add_guest_flags(parser);
  return parser;
}

int run_harden(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 1) {
    err << "r2r harden: expected exactly one guest spec (try 'r2r harden --help')\n";
    return 2;
  }
  if (args.has("--hybrid") && args.has("--patterns")) {
    err << "r2r harden: --hybrid and --patterns are mutually exclusive\n";
    return 2;
  }
  const guests::Guest guest = load_guest(args.positionals()[0], overrides_from(args));
  const elf::Image input = guests::build_image(guest);

  elf::Image hardened;
  if (args.has("--patterns")) {
    patch::PipelineConfig config;
    config.campaign = campaign_config_from(args);
    config.max_iterations = static_cast<unsigned>(args.count_or("--max-iterations", 12));
    const patch::PipelineResult result =
        patch::faulter_patcher(input, guest.good_input, guest.bad_input, config);
    out << "faulter+patcher: " << result.iterations.size() << " iteration(s), fix-point "
        << (result.fixpoint ? "reached" : "NOT reached (cap hit)") << ", residual "
        << result.final_campaign.vulnerabilities.size() << " fault(s) / "
        << result.final_campaign.pair_vulnerabilities.size() << " pair(s)";
    if (config.campaign.models.order >= 3) {
      out << " / " << result.final_campaign.tuple_vulnerabilities.size() << " tuple(s)";
    }
    out << "\n";
    hardened = result.hardened;
  } else {
    harden::HybridConfig config;
    const std::string countermeasure = args.value_or("--countermeasure", "branch-hardening");
    if (countermeasure == "branch-hardening") {
      config.countermeasure = harden::HybridCountermeasure::kBranchHardening;
    } else if (countermeasure == "instruction-duplication") {
      config.countermeasure = harden::HybridCountermeasure::kInstructionDuplication;
    } else if (countermeasure == "none") {
      config.countermeasure = harden::HybridCountermeasure::kNone;
    } else {
      fail(ErrorKind::kInvalidArgument, "unknown --countermeasure '" + countermeasure +
                                            "' (expected branch-hardening, "
                                            "instruction-duplication, or none)");
    }
    config.cleanup = !args.has("--no-cleanup");
    const harden::HybridResult result = harden::hybrid_harden(input, config);
    out << "hybrid (" << countermeasure << "): IR " << result.ir_before.total << " -> "
        << result.ir_after.total << " ops in " << result.ir_after.blocks << " block(s)\n";
    hardened = result.hardened;
  }
  out << "code size: " << input.code_size() << " -> " << hardened.code_size()
      << " bytes (overhead "
      << support::format_fixed(
             input.code_size() == 0
                 ? 0.0
                 : 100.0 *
                       (static_cast<double>(hardened.code_size()) -
                        static_cast<double>(input.code_size())) /
                       static_cast<double>(input.code_size()),
             1)
      << "%)\n";

  // Behaviour check: the hardened binary must still accept the authorized
  // input and refuse the attacker input exactly as the guest's oracle says.
  // (.s specs without inputs have no oracle to check against.)
  if (guest.good_input.empty() && guest.bad_input.empty() && guest.good_output.empty() &&
      guest.bad_output.empty()) {
    const std::string path = args.value_or("--out", guest.name + "_hardened.elf");
    const std::vector<std::uint8_t> bytes = elf::write_elf(hardened);
    write_file(path,
               std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    out << "behaviour: unchecked (no inputs for this guest)\n";
    out << "hardened ELF written to " << path << " (" << bytes.size() << " bytes)\n";
    return 0;
  }
  const emu::RunResult good = emu::run_image(hardened, guest.good_input);
  const emu::RunResult bad = emu::run_image(hardened, guest.bad_input);
  const bool intact = good.exit_code == guest.good_exit && good.output == guest.good_output &&
                      bad.exit_code == guest.bad_exit && bad.output == guest.bad_output;
  out << "behaviour: good exit=" << good.exit_code << ", bad exit=" << bad.exit_code
      << " (expected " << guest.good_exit << "/" << guest.bad_exit << ") — "
      << (intact ? "intact" : "CHANGED") << "\n";
  if (!intact) {
    err << "r2r harden: hardened binary no longer matches the guest oracle; not writing\n";
    return 1;
  }

  const std::string path = args.value_or("--out", guest.name + "_hardened.elf");
  const std::vector<std::uint8_t> bytes = elf::write_elf(hardened);
  write_file(path,
             std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  out << "hardened ELF written to " << path << " (" << bytes.size() << " bytes)\n";
  return 0;
}

}  // namespace r2r::cli
