// r2r fixpoint — the full Faulter+Patcher loop (Fig. 2; order 2+ climbs the
// reinforcement ladder that closes the paper's higher-order gap), with
// per-iteration reporting and the Table-V overhead split.
#include <ostream>

#include "cli/cli.h"
#include "elf/image.h"
#include "harden/report.h"
#include "patch/pipeline.h"
#include "support/strings.h"

namespace r2r::cli {

ArgParser make_fixpoint_parser() {
  ArgParser parser(
      "fixpoint", "<guest>",
      "Iterate the Faulter+Patcher loop — campaign, map vulnerabilities to\n"
      "patch sites, apply the protection patterns, re-campaign — until no\n"
      "patchable vulnerability remains. --order 2+ continues past the\n"
      "order-1 fix-point, climbing an order ladder that reinforces every\n"
      "residual fault pair's (then k-tuple's) sites until the sweep at the\n"
      "requested order comes back clean. Exits 0 only at a genuine fix-point.");
  add_campaign_flags(parser);
  parser.add_flag({"--max-iterations", "N", "iteration cap across all phases", "12"});
  parser.add_flag({"--elf", "FILE", "also write the hardened ELF to FILE", ""});
  add_guest_flags(parser);
  add_format_flags(parser);
  return parser;
}

int run_fixpoint(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 1) {
    err << "r2r fixpoint: expected exactly one guest spec (try 'r2r fixpoint --help')\n";
    return 2;
  }
  const Format format = format_from(args);
  const guests::Guest guest = load_guest(args.positionals()[0], overrides_from(args));
  const elf::Image image = guests::build_image(guest);

  patch::PipelineConfig config;
  config.campaign = campaign_config_from(args);
  config.max_iterations = static_cast<unsigned>(args.count_or("--max-iterations", 12));
  const patch::PipelineResult result =
      patch::faulter_patcher(image, guest.good_input, guest.bad_input, config);

  std::string text;
  switch (format) {
    case Format::kText: text = harden::fixpoint_section(guest.name, result); break;
    case Format::kJson: text = result.to_json(); break;
    case Format::kMarkdown:
      text = harden::fixpoint_markdown_section(guest.name, result);
      break;
  }
  emit_output(args, out, text);

  if (const auto elf_path = args.value("--elf")) {
    const std::vector<std::uint8_t> bytes = elf::write_elf(result.hardened);
    write_file(*elf_path,
               std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    out << "hardened ELF written to " << *elf_path << " (" << bytes.size() << " bytes)\n";
  }

  // Order 1: the paper's fix-point (no *patchable* vulnerability remains —
  // unpatchable residue is reported, not a failure). Order 2+: zero residual
  // fault sets at every level up to the requested order.
  const bool clean =
      config.campaign.models.order >= 2 ? result.orderk_fixpoint : result.fixpoint;
  return clean ? 0 : 1;
}

}  // namespace r2r::cli
