// r2r campaign — drive the sim:: engine against one guest: order-1 fault
// sweeps, order-2 pair sweeps, or order-k tuple sweeps, with
// text/JSON/markdown reports.
#include <ostream>

#include "cli/cli.h"
#include "harden/report.h"
#include "sim/engine.h"
#include "support/error.h"

namespace r2r::cli {

ArgParser make_campaign_parser() {
  ArgParser parser(
      "campaign", "<guest>",
      "Run a differential fault-injection campaign against the guest: record\n"
      "the golden good/bad-input runs, then classify every allowed fault (at\n"
      "--order 2, every fault pair; at --order 3+, every fault k-tuple) of\n"
      "the bad-input trace. Exits 0 when the sweep completes, whatever it\n"
      "finds — a campaign is a measurement.");
  add_campaign_flags(parser);
  add_guest_flags(parser);
  add_format_flags(parser);
  return parser;
}

int run_campaign_cmd(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 1) {
    err << "r2r campaign: expected exactly one guest spec (try 'r2r campaign --help')\n";
    return 2;
  }
  const Format format = format_from(args);  // validated before the sweep
  const guests::Guest guest = load_guest(args.positionals()[0], overrides_from(args));
  const elf::Image image = guests::build_image(guest);
  const fault::CampaignConfig config = campaign_config_from(args);

  // Every campaign knob the engine shares must cross over — a dropped
  // field would make `r2r campaign` and `r2r batch --cmd campaign` (which
  // routes through fault::run_campaign) classify differently.
  sim::EngineConfig engine_config;
  engine_config.threads = config.threads;
  engine_config.detected_exit_code = config.detected_exit_code;
  engine_config.fuel_multiplier = config.fuel_multiplier;
  engine_config.fuel_slack = config.fuel_slack;
  engine_config.pair_outcome_reuse = config.pair_outcome_reuse;
  const sim::Engine engine(image, guest.good_input, guest.bad_input, engine_config);

  std::string text;
  if (config.models.order >= 3) {
    const sim::TupleCampaignResult result = engine.run_tuples(config.models);
    switch (format) {
      case Format::kText:
        text = harden::residual_tuple_fault_section(guest.name, result);
        break;
      case Format::kJson: text = result.to_json(); break;
      case Format::kMarkdown:
        text = harden::tuple_campaign_markdown_section(guest.name, result);
        break;
    }
  } else if (config.models.order >= 2) {
    const sim::PairCampaignResult result = engine.run_pairs(config.models);
    switch (format) {
      case Format::kText:
        text = harden::residual_double_fault_section(guest.name, result);
        break;
      case Format::kJson: text = result.to_json(); break;
      case Format::kMarkdown:
        text = harden::pair_campaign_markdown_section(guest.name, result);
        break;
    }
  } else {
    const sim::CampaignResult result = engine.run(config.models);
    switch (format) {
      case Format::kText: text = harden::campaign_section(guest.name, result); break;
      case Format::kJson: text = result.to_json(); break;
      case Format::kMarkdown:
        text = harden::campaign_markdown_section(guest.name, result);
        break;
    }
  }
  emit_output(args, out, text);
  return 0;
}

}  // namespace r2r::cli
