// r2r serve / submit / status / shutdown — the CLI face of the r2rd
// campaign service (src/svc/). `serve` runs the daemon in the foreground;
// the other three are one-exchange clients. A submitted job's report is
// rendered by the same harden:: section code the one-shot subcommands use,
// so `r2r submit --cmd campaign` prints byte-for-byte what `r2r campaign`
// prints — cached or fresh (docs/r2rd.md pins that contract).
#include <iterator>
#include <ostream>

#include "cli/cli.h"
#include "support/error.h"
#include "svc/client.h"
#include "svc/job.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace r2r::cli {

namespace {

constexpr const char* kDefaultSocket = "r2rd.sock";

void add_socket_flags(ArgParser& parser) {
  parser.add_flag({"--socket", "PATH", "the daemon's Unix socket path", kDefaultSocket});
}

void add_client_flags(ArgParser& parser) {
  add_socket_flags(parser);
  parser.add_flag({"--connect-timeout", "MS",
                   "keep retrying the connection for MS milliseconds (covers\n"
                   "a daemon that is still starting up)",
                   "2000"});
}

/// Connects with the shared client flags; infra failures (no daemon) are
/// reported by the caller as exit 3, not as a thrown runtime error.
svc::Client connect_from(const ArgParser& args) {
  const std::string socket = args.value_or("--socket", kDefaultSocket);
  const unsigned timeout =
      static_cast<unsigned>(args.count_or("--connect-timeout", 2000));
  return svc::Client::connect(socket, timeout);
}

}  // namespace

ArgParser make_serve_parser() {
  ArgParser parser(
      "serve", "",
      "Run r2rd, the campaign service, in the foreground: accept submit /\n"
      "status / shutdown requests on a Unix socket, schedule jobs onto a\n"
      "pool of pre-warmed forked worker processes (a crashing job costs one\n"
      "worker, not the daemon), and serve repeated submissions from a\n"
      "content-addressed result cache — byte-identical to a fresh run.\n"
      "Stops when a client sends 'r2r shutdown' (graceful drain: queued\n"
      "jobs finish, new ones are refused).");
  add_socket_flags(parser);
  parser.add_flag({"--workers", "N", "pre-warmed worker processes", "2"});
  parser.add_flag({"--queue-depth", "N",
                   "max queued jobs before submits are refused (backpressure)", "16"});
  parser.add_flag({"--cache-capacity", "N", "result-cache entries (FIFO eviction)",
                   "1024"});
  return parser;
}

int run_serve(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (!args.positionals().empty()) {
    err << "r2r serve: takes no positional arguments (try 'r2r serve --help')\n";
    return 2;
  }
  svc::ServerConfig config;
  config.socket_path = args.value_or("--socket", kDefaultSocket);
  config.workers = static_cast<unsigned>(args.count_or("--workers", 2, 256));
  config.queue_depth = args.count_or("--queue-depth", 16);
  config.cache_capacity = args.count_or("--cache-capacity", 1024);
  if (config.queue_depth == 0) {
    err << "r2r serve: --queue-depth must be at least 1\n";
    return 2;
  }
  svc::Server server(config);
  server.start();
  out << "r2rd listening on " << config.socket_path << " (" << config.workers
      << " worker(s), queue depth " << config.queue_depth << ")\n";
  out.flush();
  server.wait();
  out << "r2rd drained and stopped\n";
  return 0;
}

ArgParser make_submit_parser() {
  ArgParser parser(
      "submit", "<guest>",
      "Submit one job to a running r2rd daemon and print its report — the\n"
      "same bytes the one-shot subcommand would print, whether the answer\n"
      "was freshly simulated or served from the daemon's result cache.\n"
      "The guest spec is resolved locally (the resolved bytes are what the\n"
      "daemon hashes and runs), so relative .s paths work from the client's\n"
      "directory. Exits with the job's own code (0/1), or 3 when the\n"
      "daemon was unreachable, refused the job, or lost a worker to it.");
  parser.add_flag({"--cmd", "NAME", "job to run: campaign, fixpoint, or harden",
                   "campaign"});
  add_client_flags(parser);
  parser.add_flag({"--priority", "N", "queue priority (higher runs first)", "0"});
  add_campaign_flags(parser);
  parser.add_flag({"--max-iterations", "N", "fixpoint/harden --patterns: iteration cap",
                   "12"});
  parser.add_flag({"--patterns", "", "harden: use the Faulter+Patcher patterns", ""});
  parser.add_flag({"--elf", "FILE",
                   "fixpoint/harden: also write the returned hardened ELF to FILE", ""});
  add_guest_flags(parser);
  add_format_flags(parser);
  return parser;
}

int run_submit(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 1) {
    err << "r2r submit: expected exactly one guest spec (try 'r2r submit --help')\n";
    return 2;
  }
  const Format format = format_from(args);
  (void)format;  // validated; the daemon renders from the format name
  const std::string cmd = args.value_or("--cmd", "campaign");
  if (cmd != "campaign" && cmd != "fixpoint" && cmd != "harden") {
    err << "r2r submit: unknown --cmd '" << cmd
        << "' (expected campaign, fixpoint, or harden)\n";
    return 2;
  }

  svc::JobSpec spec;
  spec.kind = svc::job_kind_from(cmd);
  spec.guest = load_guest(args.positionals()[0], overrides_from(args));
  spec.campaign = campaign_config_from(args);
  spec.max_iterations = static_cast<unsigned>(args.count_or("--max-iterations", 12));
  spec.patterns = args.has("--patterns");
  spec.format = args.value_or("--format", "text");

  try {
    svc::Client client = connect_from(args);
    svc::Message request = spec.to_message();
    request.set("op", "submit");
    request.set_u64("priority", args.count_or("--priority", 0));
    const svc::Message response = client.request(request);
    if (response.get_or("ok", "0") != "1") {
      err << "r2r submit: " << response.get_or("error", "daemon refused the job")
          << "\n";
      return svc::kInfraExitCode;
    }
    const svc::JobResult result = svc::JobResult::from_message(response);
    if (result.infra) {
      err << "r2r submit: " << result.error << "\n";
      return svc::kInfraExitCode;
    }
    emit_output(args, out, result.report);
    if (const auto elf_path = args.value("--elf")) {
      if (result.elf.empty()) {
        err << "r2r submit: this job kind returns no ELF; --elf ignored\n";
      } else {
        write_file(*elf_path, result.elf);
        out << "hardened ELF written to " << *elf_path << " (" << result.elf.size()
            << " bytes)\n";
      }
    }
    return result.exit_code;
  } catch (const support::Error& error) {
    err << "r2r submit: " << error.what() << "\n";
    return svc::kInfraExitCode;
  }
}

ArgParser make_status_parser() {
  ArgParser parser(
      "status", "",
      "Query a running r2rd daemon: queue depth and capacity, worker count\n"
      "and respawns, cache entries/hits/misses, jobs submitted, completed\n"
      "and rejected, and whether a drain is in progress.");
  add_client_flags(parser);
  add_format_flags(parser);
  return parser;
}

int run_status(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const Format format = format_from(args);
  try {
    svc::Client client = connect_from(args);
    svc::Message request;
    request.set("op", "status");
    const svc::Message response = client.request(request);
    static constexpr const char* kFields[] = {
        "draining",      "workers",        "queue_depth",    "queue_capacity",
        "cache_entries", "cache_hits",     "cache_misses",   "jobs_submitted",
        "jobs_completed", "jobs_rejected", "workers_respawned",
    };
    std::string text;
    if (format == Format::kJson) {
      text = "{\n";
      for (std::size_t i = 0; i < std::size(kFields); ++i) {
        text += "  \"" + std::string(kFields[i]) +
                "\": " + response.get_or(kFields[i], "0") +
                (i + 1 < std::size(kFields) ? ",\n" : "\n");
      }
      text += "}\n";
    } else {
      const std::string socket = args.value_or("--socket", kDefaultSocket);
      text = "r2rd at " + socket + "\n";
      for (const char* field : kFields) {
        text += "  " + std::string(field) + ": " + response.get_or(field, "0") + "\n";
      }
    }
    emit_output(args, out, text);
    return 0;
  } catch (const support::Error& error) {
    err << "r2r status: " << error.what() << "\n";
    return svc::kInfraExitCode;
  }
}

ArgParser make_shutdown_parser() {
  ArgParser parser(
      "shutdown", "",
      "Gracefully stop a running r2rd daemon: it immediately refuses new\n"
      "jobs, finishes everything already queued, then answers here and\n"
      "exits. The reply reports the final statistics.");
  add_client_flags(parser);
  return parser;
}

int run_shutdown(const ArgParser& args, std::ostream& out, std::ostream& err) {
  try {
    svc::Client client = connect_from(args);
    svc::Message request;
    request.set("op", "shutdown");
    const svc::Message response = client.request(request);
    out << "r2rd drained: " << response.get_or("jobs_completed", "0")
        << " job(s) completed, " << response.get_or("cache_hits", "0")
        << " cache hit(s), " << response.get_or("workers_respawned", "0")
        << " worker respawn(s)\n";
    return 0;
  } catch (const support::Error& error) {
    err << "r2r shutdown: " << error.what() << "\n";
    return svc::kInfraExitCode;
  }
}

}  // namespace r2r::cli
