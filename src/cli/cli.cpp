#include "cli/cli.h"

#include <algorithm>
#include <ostream>

#include "sim/engine.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

const std::vector<Command>& commands() {
  static const std::vector<Command> registry = {
      {"lift", "disassemble a guest to its binary IR, or lift it to the compiler IR",
       make_lift_parser, run_lift},
      {"harden", "produce a hardened ELF (Faulter+Patcher patterns or the Hybrid pass)",
       make_harden_parser, run_harden},
      {"campaign", "run an order-1 or order-2 fault-injection campaign",
       make_campaign_parser, run_campaign_cmd},
      {"fixpoint", "iterate the Faulter+Patcher loop to its fix-point and report it",
       make_fixpoint_parser, run_fixpoint},
      {"synth", "generate seeded synthetic guests (and their oracles)",
       make_synth_parser, run_synth},
      {"batch", "run a subcommand across many guests with a sharded worker pool",
       make_batch_parser, run_batch},
  };
  return registry;
}

std::string top_level_help() {
  std::string out = "usage: r2r <command> [flags]\n\n";
  out +=
      "r2r — rewrite to reinforce: find fault-injection vulnerabilities in a\n"
      "binary and patch countermeasures directly into it (DAC 2021 pipeline:\n"
      "lift -> harden -> lower -> patch -> simulate).\n\ncommands:\n";
  std::size_t column = 0;
  for (const Command& command : commands()) column = std::max(column, command.name.size());
  for (const Command& command : commands()) {
    out += "  " + std::string(command.name) +
           std::string(column - command.name.size() + 2, ' ') +
           std::string(command.summary) + "\n";
  }
  out +=
      "\nguest specs: pincheck | bootloader | toymov | synth:<seed> | path/to/prog.s\n"
      "(.s specs read inputs from <stem>.good / <stem>.bad sidecars)\n\n"
      "Run 'r2r <command> --help' for flags; docs/r2r.md is the full reference.\n";
  return out;
}

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    out << top_level_help();
    return args.empty() ? 2 : 0;
  }
  const Command* command = nullptr;
  for (const Command& candidate : commands()) {
    if (candidate.name == args[0]) command = &candidate;
  }
  if (command == nullptr) {
    err << "r2r: unknown command '" << args[0] << "' (try 'r2r --help')\n";
    return 2;
  }

  ArgParser parser = command->make_parser();
  try {
    parser.parse({args.begin() + 1, args.end()});
  } catch (const support::Error& error) {
    err << "r2r: " << error.what() << "\n";
    return 2;
  }
  if (parser.help_requested()) {
    out << parser.help();
    return 0;
  }
  try {
    return command->run(parser, out, err);
  } catch (const support::Error& error) {
    err << "r2r " << command->name << ": " << error.what() << "\n";
    return error.kind() == ErrorKind::kInvalidArgument ? 2 : 1;
  }
}

// ---- shared flag bundles ----------------------------------------------------

void add_format_flags(ArgParser& parser) {
  parser.add_flag({"--format", "FMT", "output format: text, json, or markdown", "text"});
  parser.add_flag({"--out", "FILE", "write the report to FILE instead of stdout", ""});
}

Format format_from(const ArgParser& parser) {
  const std::string format = parser.value_or("--format", "text");
  if (format == "text") return Format::kText;
  if (format == "json") return Format::kJson;
  if (format == "markdown") return Format::kMarkdown;
  fail(ErrorKind::kInvalidArgument,
       "unknown --format '" + format + "' (expected text, json, or markdown)");
}

void emit_output(const ArgParser& parser, std::ostream& out, const std::string& text) {
  const auto path = parser.value("--out");
  if (!path.has_value()) {
    out << text;
    return;
  }
  write_file(*path, text);
  out << "report written to " << *path << " (" << text.size() << " bytes)\n";
}

void add_guest_flags(ArgParser& parser) {
  parser.add_flag({"--good-input", "BYTES",
                   "authorized input override (@FILE reads bytes from FILE)", ""});
  parser.add_flag({"--bad-input", "BYTES",
                   "attacker input override (@FILE reads bytes from FILE)", ""});
}

GuestOverrides overrides_from(const ArgParser& parser) {
  GuestOverrides overrides;
  if (auto v = parser.value("--good-input")) overrides.good_input = *v;
  if (auto v = parser.value("--bad-input")) overrides.bad_input = *v;
  return overrides;
}

void add_campaign_flags(ArgParser& parser) {
  std::string models;
  for (const std::string_view name : sim::fault_model_names()) {
    if (!models.empty()) models += ", ";
    models += name;
  }
  parser.add_flag({"--model", "LIST",
                   "comma-separated fault models to sweep: " + models, "skip,bit_flip"});
  parser.add_flag({"--order", "N", "campaign order: 1 (single faults) or 2 (pairs)", "1"});
  parser.add_flag({"--pair-window", "W",
                   "order 2: max trace distance t2-t1 between the two faults", "8"});
  parser.add_flag({"--threads", "N",
                   "worker threads per sweep (0 = hardware concurrency);\nresults are "
                   "bit-identical for every value",
                   "1"});
  parser.add_flag({"--no-reuse", "",
                   "order 2: simulate every pair instead of reusing order-1\nprofiles "
                   "(bit-identical, much slower; a pruning-soundness check)",
                   ""});
}

fault::CampaignConfig campaign_config_from(const ArgParser& parser) {
  fault::CampaignConfig config;
  if (const auto list = parser.value("--model")) {
    sim::FaultModels selected;
    for (const std::string_view name : sim::fault_model_names()) {
      sim::set_fault_model(selected, name, false);
    }
    for (const std::string_view piece : support::split(*list, ',')) {
      std::string name = support::to_lower(piece);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      if (!sim::set_fault_model(selected, name, true)) {
        fail(ErrorKind::kInvalidArgument, "unknown fault model '" + std::string(piece) +
                                              "' (see --help for the model list)");
      }
    }
    config.models = selected;
  }
  config.models.order = static_cast<unsigned>(parser.uint_or("--order", 1));
  if (config.models.order != 1 && config.models.order != 2) {
    fail(ErrorKind::kInvalidArgument, "--order must be 1 or 2");
  }
  config.models.pair_window = parser.uint_or("--pair-window", config.models.pair_window);
  config.threads = static_cast<unsigned>(parser.uint_or("--threads", 1));
  config.pair_outcome_reuse = !parser.has("--no-reuse");
  return config;
}

}  // namespace r2r::cli
