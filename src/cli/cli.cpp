#include "cli/cli.h"

#include <algorithm>
#include <optional>
#include <ostream>

#include "isa/target.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "support/error.h"
#include "support/strings.h"
#include "svc/job.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

namespace {

/// The global observability flags, valid in any position for any command.
struct ObsOptions {
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  bool progress = false;
};

/// Strips --trace-out/--metrics-out/--progress (both `--flag VALUE` and
/// `--flag=VALUE` forms) out of `args` before subcommand dispatch, so every
/// command accepts them without each parser re-declaring the bundle.
ObsOptions extract_obs_flags(std::vector<std::string>& args) {
  ObsOptions options;
  const auto take_value = [&](std::size_t& i, const std::string& flag,
                              const std::string_view name) {
    if (flag.size() > name.size() && flag[name.size()] == '=') {
      return flag.substr(name.size() + 1);
    }
    if (i + 1 >= args.size()) {
      fail(ErrorKind::kInvalidArgument,
           std::string(name) + " requires a file argument");
    }
    return args[++i];
  };

  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--trace-out" || arg.starts_with("--trace-out=")) {
      options.trace_out = take_value(i, arg, "--trace-out");
    } else if (arg == "--metrics-out" || arg.starts_with("--metrics-out=")) {
      options.metrics_out = take_value(i, arg, "--metrics-out");
    } else {
      kept.push_back(arg);
    }
  }
  args = std::move(kept);
  return options;
}

/// Strips the global --target flag (both `--target NAME` and
/// `--target=NAME`) out of `args` and resolves it against the target
/// registry. Defaults to x86-64 when absent.
const isa::Target& extract_target_flag(std::vector<std::string>& args) {
  const isa::Target* selected = &isa::target(isa::Arch::kX64);
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string name;
    if (arg.starts_with("--target=")) {
      name = arg.substr(std::string_view("--target=").size());
    } else if (arg == "--target") {
      if (i + 1 >= args.size()) {
        fail(ErrorKind::kInvalidArgument, "--target requires a target name");
      }
      name = args[++i];
    } else {
      kept.push_back(arg);
      continue;
    }
    const isa::Target* found = isa::find_target(name);
    if (found == nullptr) {
      std::string known;
      for (const isa::Target* candidate : isa::all_targets()) {
        if (!known.empty()) known += ", ";
        known += candidate->name();
      }
      fail(ErrorKind::kInvalidArgument,
           "unknown target '" + name + "' (available: " + known + ")");
    }
    selected = found;
  }
  args = std::move(kept);
  return *selected;
}

/// Applies the --target selection for one run() invocation and restores the
/// previous one on the way out — in-process callers (tests, batch) must not
/// inherit a stale target.
class TargetScope {
 public:
  explicit TargetScope(isa::Arch arch) : previous_(active_target()) {
    set_active_target(arch);
  }
  ~TargetScope() { set_active_target(previous_); }

 private:
  isa::Arch previous_;
};

/// Arms the obs layer for one run() invocation and writes the requested
/// artifacts on the way out, then disarms everything — sequential
/// in-process invocations (tests, the batch driver) must not leak tracing
/// state into each other. Progress renders to the caller's `err` stream;
/// trace/metrics files are written silently.
class ObsScope {
 public:
  ObsScope(const ObsOptions& options, std::ostream& err)
      : options_(options), err_(err) {
    if (options_.trace_out.has_value()) {
      obs::Tracer::instance().clear();
      obs::Tracer::instance().set_enabled(true);
    }
    if (options_.trace_out.has_value() || options_.metrics_out.has_value()) {
      obs::set_timing_enabled(true);
    }
    if (options_.metrics_out.has_value()) obs::Metrics::instance().reset();
    if (options_.progress) obs::set_progress_stream(&err_);
  }

  ~ObsScope() {
    obs::set_progress_stream(nullptr);
    obs::set_timing_enabled(false);
    if (options_.trace_out.has_value()) {
      obs::Tracer::instance().set_enabled(false);
      try {
        write_file(*options_.trace_out, obs::Tracer::instance().to_chrome_json());
      } catch (const std::exception& e) {
        err_ << "r2r: failed to write trace: " << e.what() << "\n";
      }
      obs::Tracer::instance().clear();
    }
    if (options_.metrics_out.has_value()) {
      try {
        write_file(*options_.metrics_out, obs::Metrics::instance().to_json());
      } catch (const std::exception& e) {
        err_ << "r2r: failed to write metrics: " << e.what() << "\n";
      }
    }
  }

 private:
  ObsOptions options_;
  std::ostream& err_;
};

}  // namespace

const std::vector<Command>& commands() {
  static const std::vector<Command> registry = {
      {"lift", "disassemble a guest to its binary IR, or lift it to the compiler IR",
       make_lift_parser, run_lift},
      {"harden", "produce a hardened ELF (Faulter+Patcher patterns or the Hybrid pass)",
       make_harden_parser, run_harden},
      {"campaign", "run an order-1, order-2, or order-k fault-injection campaign",
       make_campaign_parser, run_campaign_cmd},
      {"fixpoint", "iterate the Faulter+Patcher loop to its fix-point and report it",
       make_fixpoint_parser, run_fixpoint},
      {"synth", "generate seeded synthetic guests (and their oracles)",
       make_synth_parser, run_synth},
      {"batch", "run a subcommand across many guests with a sharded worker pool",
       make_batch_parser, run_batch},
      {"serve", "run the r2rd campaign daemon (worker pool + result cache)",
       make_serve_parser, run_serve},
      {"submit", "run a subcommand on a running r2rd daemon (cached when repeated)",
       make_submit_parser, run_submit},
      {"status", "print a running r2rd daemon's queue/cache/worker statistics",
       make_status_parser, run_status},
      {"shutdown", "drain a running r2rd daemon and stop it",
       make_shutdown_parser, run_shutdown},
  };
  return registry;
}

std::string top_level_help() {
  std::string out = "usage: r2r <command> [flags]\n\n";
  out +=
      "r2r — rewrite to reinforce: find fault-injection vulnerabilities in a\n"
      "binary and patch countermeasures directly into it (DAC 2021 pipeline:\n"
      "lift -> harden -> lower -> patch -> simulate).\n\ncommands:\n";
  std::size_t column = 0;
  for (const Command& command : commands()) column = std::max(column, command.name.size());
  for (const Command& command : commands()) {
    out += "  " + std::string(command.name) +
           std::string(column - command.name.size() + 2, ' ') +
           std::string(command.summary) + "\n";
  }
  out +=
      "\nglobal flags (accepted by every command):\n"
      "  --target NAME       instruction-set target for guests and codegen\n"
      "                      (default x64):\n";
  for (const isa::Target* target : isa::all_targets()) {
    std::string name(target->name());
    out += "                        " + name +
           std::string(name.size() < 7 ? 7 - name.size() : 1, ' ') +
           std::string(target->description()) + "\n";
  }
  out +=
      "  --trace-out FILE    write a Chrome trace-event JSON of this run\n"
      "                      (open in Perfetto; see docs/observability.md)\n"
      "  --metrics-out FILE  write the obs metrics snapshot (counters,\n"
      "                      gauges, histograms) as JSON\n"
      "  --progress          render a live percent/rate/ETA line on stderr\n";
  out +=
      "\nguest specs: pincheck | bootloader | toymov | synth:<seed> | path/to/prog.s\n"
      "(.s specs read inputs from <stem>.good / <stem>.bad sidecars)\n\n"
      "Run 'r2r <command> --help' for flags; docs/r2r.md is the full reference.\n";
  return out;
}

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::vector<std::string> argv = args;
  ObsOptions obs_options;
  const isa::Target* target = nullptr;
  try {
    obs_options = extract_obs_flags(argv);
    target = &extract_target_flag(argv);
  } catch (const support::Error& error) {
    err << "r2r: " << error.what() << "\n";
    return 2;
  }
  const TargetScope target_scope(target->arch());

  if (argv.empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help") {
    out << top_level_help();
    return argv.empty() ? 2 : 0;
  }
  const Command* command = nullptr;
  for (const Command& candidate : commands()) {
    if (candidate.name == argv[0]) command = &candidate;
  }
  if (command == nullptr) {
    err << "r2r: unknown command '" << argv[0] << "' (try 'r2r --help')\n";
    return 2;
  }

  ArgParser parser = command->make_parser();
  try {
    parser.parse({argv.begin() + 1, argv.end()});
  } catch (const support::Error& error) {
    err << "r2r: " << error.what() << "\n";
    return 2;
  }
  if (parser.help_requested()) {
    out << parser.help();
    return 0;
  }
  const ObsScope obs_scope(obs_options, err);
  try {
    return command->run(parser, out, err);
  } catch (const support::Error& error) {
    // With --progress a throttled '\r' line may still be pending on this
    // stream; blank it first so the diagnostic doesn't overstrike it.
    obs::clear_partial_progress_line();
    err << "r2r " << command->name << ": " << error.what() << "\n";
    return error.kind() == ErrorKind::kInvalidArgument ? 2 : 1;
  } catch (const std::exception& error) {
    obs::clear_partial_progress_line();
    err << "r2r " << command->name << ": unexpected error: " << error.what() << "\n";
    return svc::kInfraExitCode;
  }
}

// ---- shared flag bundles ----------------------------------------------------

void add_format_flags(ArgParser& parser) {
  parser.add_flag({"--format", "FMT", "output format: text, json, or markdown", "text"});
  parser.add_flag({"--out", "FILE", "write the report to FILE instead of stdout", ""});
}

Format format_from(const ArgParser& parser) {
  const std::string format = parser.value_or("--format", "text");
  if (format == "text") return Format::kText;
  if (format == "json") return Format::kJson;
  if (format == "markdown") return Format::kMarkdown;
  fail(ErrorKind::kInvalidArgument,
       "unknown --format '" + format + "' (expected text, json, or markdown)");
}

void emit_output(const ArgParser& parser, std::ostream& out, const std::string& text) {
  const auto path = parser.value("--out");
  if (!path.has_value()) {
    out << text;
    return;
  }
  write_file(*path, text);
  out << "report written to " << *path << " (" << text.size() << " bytes)\n";
}

void add_guest_flags(ArgParser& parser) {
  parser.add_flag({"--good-input", "BYTES",
                   "authorized input override (@FILE reads bytes from FILE)", ""});
  parser.add_flag({"--bad-input", "BYTES",
                   "attacker input override (@FILE reads bytes from FILE)", ""});
}

GuestOverrides overrides_from(const ArgParser& parser) {
  GuestOverrides overrides;
  if (auto v = parser.value("--good-input")) overrides.good_input = *v;
  if (auto v = parser.value("--bad-input")) overrides.bad_input = *v;
  return overrides;
}

void add_campaign_flags(ArgParser& parser) {
  std::string models;
  for (const std::string_view name : sim::fault_model_names()) {
    if (!models.empty()) models += ", ";
    models += name;
  }
  parser.add_flag({"--model", "LIST",
                   "comma-separated fault models to sweep: " + models, "skip,bit_flip"});
  parser.add_flag({"--order", "N",
                   "campaign order: 1 (single faults), 2 (pairs), or 3.." +
                       std::to_string(fault::kMaxCampaignOrder) + " (k-tuples)",
                   "1"});
  parser.add_flag({"--pair-window", "W",
                   "order 2+: max trace distance between consecutive faults", "8"});
  parser.add_flag({"--max-tuples", "N",
                   "order 3+: sample at most N top-level tuples per sweep\n(seeded, "
                   "thread-count independent; 0 = exhaustive)",
                   "0"});
  parser.add_flag({"--sample-seed", "S",
                   "order 3+: RNG seed for the --max-tuples sample", "24301"});
  parser.add_flag({"--threads", "N",
                   "worker threads per sweep (0 = hardware concurrency);\nresults are "
                   "bit-identical for every value",
                   "1"});
  parser.add_flag({"--no-reuse", "",
                   "order 2+: simulate every fault set instead of reusing\nlower-order "
                   "profiles (bit-identical, much slower; a\npruning-soundness check)",
                   ""});
}

fault::CampaignConfig campaign_config_from(const ArgParser& parser) {
  fault::CampaignConfig config;
  if (const auto list = parser.value("--model")) {
    sim::FaultModels selected;
    for (const std::string_view name : sim::fault_model_names()) {
      sim::set_fault_model(selected, name, false);
    }
    for (const std::string_view piece : support::split(*list, ',')) {
      std::string name = support::to_lower(piece);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      if (!sim::set_fault_model(selected, name, true)) {
        fail(ErrorKind::kInvalidArgument, "unknown fault model '" + std::string(piece) +
                                              "' (see --help for the model list)");
      }
    }
    config.models = selected;
  }
  config.models.order = static_cast<unsigned>(parser.count_or("--order", 1));
  if (config.models.order < 1 || config.models.order > fault::kMaxCampaignOrder) {
    fail(ErrorKind::kInvalidArgument,
         "--order must be 1.." + std::to_string(fault::kMaxCampaignOrder));
  }
  config.models.pair_window =
      parser.count_or("--pair-window", config.models.pair_window);
  config.models.max_tuples = parser.count_or("--max-tuples", config.models.max_tuples);
  config.models.sample_seed =
      parser.count_or("--sample-seed", config.models.sample_seed);
  config.threads = static_cast<unsigned>(parser.count_or("--threads", 1));
  config.pair_outcome_reuse = !parser.has("--no-reuse");
  return config;
}

}  // namespace r2r::cli
