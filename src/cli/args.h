// r2r::cli — declarative flag parsing for the r2r driver.
//
// Every subcommand builds one ArgParser from FlagSpecs; the same specs
// produce the parser, the `--help` text, and (via docs/r2r.md's golden
// test) the manual page — so a flag cannot exist without documentation,
// and the documentation cannot drift from the binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace r2r::cli {

/// One flag of a subcommand. An empty `value_name` declares a boolean
/// switch; otherwise the flag takes a value (`--flag V` or `--flag=V`).
/// Single-dash names ("-j") also accept the attached form ("-j8").
struct FlagSpec {
  std::string name;          ///< "--model", "-j", ...
  std::string value_name;    ///< "LIST", "N", ... ("" = boolean)
  std::string help;          ///< one sentence; '\n' continues the column
  std::string default_text;  ///< rendered as "[default: X]" when non-empty
};

class ArgParser {
 public:
  /// `usage_suffix` is what follows the command in the usage line, e.g.
  /// "<guest>" or "<guest...>"; `summary` is the one-paragraph description.
  ArgParser(std::string command, std::string usage_suffix, std::string summary);

  void add_flag(FlagSpec spec);

  /// Parses everything after the subcommand name. `--help` anywhere stops
  /// parsing and sets help_requested(). Throws
  /// support::Error{kInvalidArgument} on an unknown flag, a flag missing
  /// its value, or a value-less boolean given one.
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] bool has(std::string_view flag) const;
  [[nodiscard]] std::optional<std::string> value(std::string_view flag) const;
  [[nodiscard]] std::string value_or(std::string_view flag, std::string fallback) const;
  /// Parses the flag's value as an unsigned integer; throws
  /// Error{kInvalidArgument} on malformed or negative input.
  [[nodiscard]] std::uint64_t uint_or(std::string_view flag, std::uint64_t fallback) const;
  /// uint_or with an inclusive upper bound, for count-like flags whose call
  /// sites narrow to 32 bits (--threads, --seed, --order, ...). Without the
  /// bound, a value in (2^32-1, 2^63-1] would pass uint_or and then wrap
  /// silently through the unsigned conversion — `--threads 4294967297`
  /// becoming 1. Throws Error{kInvalidArgument} naming the flag, the
  /// offending token, and the accepted range.
  [[nodiscard]] std::uint64_t count_or(std::string_view flag, std::uint64_t fallback,
                                       std::uint64_t max = 0xFFFFFFFFu) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  [[nodiscard]] const std::string& command() const noexcept { return command_; }
  [[nodiscard]] const std::string& summary() const noexcept { return summary_; }

  /// The full `--help` text (usage, summary, flag table). Deterministic;
  /// docs/r2r.md embeds it verbatim and a golden test keeps them in sync.
  [[nodiscard]] std::string help() const;

 private:
  [[nodiscard]] const FlagSpec* find(std::string_view name) const;

  std::string command_;
  std::string usage_suffix_;
  std::string summary_;
  std::vector<FlagSpec> flags_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace r2r::cli
