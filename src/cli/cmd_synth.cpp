// r2r synth — the deterministic guest generator as a command: emit one (or
// a range of) seeded synthetic guests, to stdout or as bundle files that
// `r2r batch --dir` picks up directly.
#include <cstdio>
#include <ostream>

#include "cli/cli.h"
#include "guests/synth.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

ArgParser make_synth_parser() {
  ArgParser parser(
      "synth", "",
      "Generate seeded synthetic guests in the r2r dialect: a randomized\n"
      "control-flow skeleton around one security decision, plus host-derived\n"
      "good/bad inputs and expected-output oracles. Pure in the seed — the\n"
      "same invocation is byte-identical on every host. Without --out the\n"
      "assembly (with an oracle header) prints to stdout; with --out each\n"
      "guest becomes <name>.s/.good/.bad/.expect.json under the directory.");
  parser.add_flag({"--seed", "K", "first (or only) generator seed", "0"});
  parser.add_flag({"--count", "N", "number of consecutive seeds to emit", "1"});
  parser.add_flag({"--out", "DIR", "write guest bundles into DIR instead of stdout", ""});
  parser.add_flag({"--min-key-len", "N", "input length lower bound (bytes)", "4"});
  parser.add_flag({"--max-key-len", "N", "input length upper bound (bytes)", "8"});
  parser.add_flag({"--max-noise-helpers", "N", "call-tree size bound", "3"});
  parser.add_flag({"--branch-density", "P", "noise conditional chance (percent)", "40"});
  parser.add_flag({"--loop-chance", "P", "data-dependent loop chance (percent)", "60"});
  parser.add_flag({"--max-cmp-jcc-gap", "N",
                   "max flag-neutral filler draws between the decision cmp\nand its jcc "
                   "(Table II/III cmp-far-from-branch shapes)",
                   "4"});
  parser.add_flag({"--decisions", "LIST",
                   "allowed decision kinds: byte, digest, multistage", "all three"});
  return parser;
}

namespace {

std::string_view decision_name(guests::synth::DecisionKind kind) {
  switch (kind) {
    case guests::synth::DecisionKind::kByteCompare: return "byte-compare";
    case guests::synth::DecisionKind::kDigestCompare: return "digest-compare";
    case guests::synth::DecisionKind::kMultiStageGuard: return "multi-stage-guard";
  }
  return "?";
}

std::string printable(const std::string& bytes) {
  std::string out;
  for (const char c : bytes) {
    if (c >= 0x20 && c < 0x7F && c != '\\') {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

}  // namespace

int run_synth(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (!args.positionals().empty()) {
    err << "r2r synth: takes no positional arguments (try 'r2r synth --help')\n";
    return 2;
  }
  guests::synth::SynthConfig config;
  config.min_key_len = static_cast<unsigned>(args.count_or("--min-key-len", 4));
  config.max_key_len = static_cast<unsigned>(args.count_or("--max-key-len", 8));
  config.max_noise_helpers = static_cast<unsigned>(args.count_or("--max-noise-helpers", 3));
  config.branch_density_percent =
      static_cast<unsigned>(args.count_or("--branch-density", 40));
  config.loop_chance_percent = static_cast<unsigned>(args.count_or("--loop-chance", 60));
  config.max_cmp_jcc_gap = static_cast<unsigned>(args.count_or("--max-cmp-jcc-gap", 4));
  if (const auto list = args.value("--decisions")) {
    config.allow_byte_compare = false;
    config.allow_digest = false;
    config.allow_multistage = false;
    for (const std::string_view piece : support::split(*list, ',')) {
      if (piece == "byte") {
        config.allow_byte_compare = true;
      } else if (piece == "digest") {
        config.allow_digest = true;
      } else if (piece == "multistage") {
        config.allow_multistage = true;
      } else {
        fail(ErrorKind::kInvalidArgument,
             "unknown decision kind '" + std::string(piece) +
                 "' (expected byte, digest, or multistage)");
      }
    }
  }

  const std::uint64_t base = args.count_or("--seed", 0);
  const std::uint64_t count = args.count_or("--count", 1);
  const auto dir = args.value("--out");
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    config.seed = seed;
    const guests::Guest guest = guests::synth::generate(config);
    const std::string_view decision = decision_name(guests::synth::decision_kind(config));
    if (dir.has_value()) {
      const std::vector<std::string> paths = write_guest_bundle(guest, *dir);
      out << guest.name << " (" << decision << "): " << paths.size()
          << " files under " << *dir << "\n";
      continue;
    }
    out << "; " << guest.name << " — decision: " << decision << "\n";
    out << "; good input \"" << printable(guest.good_input) << "\" -> exit "
        << guest.good_exit << ", bad input \"" << printable(guest.bad_input)
        << "\" -> exit " << guest.bad_exit << "\n";
    out << guest.assembly;
    if (seed + 1 < base + count) out << "\n";
  }
  return 0;
}

}  // namespace r2r::cli
