// r2r batch — the multi-guest driver: shard a subcommand's workload across
// a pool of worker threads (one guest per task) and aggregate the results
// into one summary table / JSON document.
//
// Determinism contract: each worker writes only its own slot of the result
// vector and the aggregation walks slots in input order, so the complete
// output — stdout, --out file, exit code — is byte-identical for every -j
// value (the per-guest work is itself thread-invariant by the engine's
// slot-per-fault guarantee). `-j` parallelises *across* guests; --threads
// still controls the worker threads *inside* each campaign.
#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdlib>
#include <ostream>
#include <thread>

#include "bir/recover.h"
#include "cli/cli.h"
#include "emu/machine.h"
#include "harden/hybrid.h"
#include "harden/report.h"
#include "obs/obs.h"
#include "patch/pipeline.h"
#include "sim/engine.h"
#include "support/error.h"
#include "support/strings.h"
#include "svc/job.h"

namespace r2r::cli {

using support::ErrorKind;
using support::fail;

ArgParser make_batch_parser() {
  ArgParser parser(
      "batch", "<guest...>",
      "Run one subcommand across many guests — positional specs plus every\n"
      "*.s bundle under --dir — sharded across -j worker threads with\n"
      "deterministic aggregation: the summary is byte-identical for every\n"
      "-j value. Duplicate specs (same guest resolved twice, e.g. a\n"
      "positional repeated under --dir) are processed once, with a warning.\n"
      "Exits 0 only when every guest succeeded (for fixpoint: reached its\n"
      "fix-point; for harden: behaviour intact); 1 when a guest genuinely\n"
      "failed its check; 3 when processing itself errored (bad spec,\n"
      "pipeline exception) — an infrastructure failure, not a verdict.");
  parser.add_flag({"--cmd", "NAME", "subcommand to run: campaign, fixpoint, harden, or "
                                    "lift",
                   "campaign"});
  parser.add_flag({"--dir", "DIR", "add every *.s guest bundle under DIR", ""});
  parser.add_flag({"-j", "N", "guests processed in parallel (0 = hardware concurrency)",
                   "1"});
  add_campaign_flags(parser);
  parser.add_flag({"--max-iterations", "N", "fixpoint/harden --patterns: iteration cap",
                   "12"});
  parser.add_flag({"--hybrid", "", "harden: use the Hybrid approach (default)", ""});
  parser.add_flag({"--patterns", "", "harden: use the Faulter+Patcher patterns", ""});
  add_format_flags(parser);
  return parser;
}

namespace {

/// One guest's aggregated outcome. `cells` feed the summary table, `json`
/// is the per-guest object body; both are built inside the worker so the
/// join only concatenates.
struct BatchRow {
  std::string name;
  bool ok = false;
  std::string error;  ///< non-empty when the guest failed to process
  std::vector<std::string> cells;
  std::string json;
};

struct BatchPlan {
  std::string cmd;
  fault::CampaignConfig campaign;
  unsigned max_iterations = 12;
  bool patterns = false;
};

std::vector<std::string> header_for(const std::string& cmd, unsigned order) {
  if (cmd == "campaign") {
    if (order >= 3) {
      return {"guest", "status", "trace", "faults", "successful", "tuples",
              "successful tuples", "strictly order-" + std::to_string(order)};
    }
    return {"guest", "status", "trace", "faults", "successful", "pairs",
            "successful pairs", "strictly order-2"};
  }
  if (cmd == "fixpoint") {
    return {"guest", "status", "iterations", "residual faults",
            order >= 3 ? "residual sets" : "residual pairs",
            "order-1 overhead", "total overhead"};
  }
  if (cmd == "harden") {
    return {"guest", "status", "approach", "code bytes", "hardened bytes", "overhead"};
  }
  return {"guest", "status", "instructions", "code bytes"};  // lift
}

/// The identity a spec resolves to, for duplicate detection: file-backed
/// specs canonicalize through realpath (so `./foo.s`, `foo.s`, and the
/// --dir discovery of the same bundle all collide); builtin and synth:
/// specs are their own identity.
std::string spec_identity(const std::string& spec) {
  if (spec.size() > 2 && spec.rfind(".s") == spec.size() - 2) {
    char resolved[PATH_MAX];
    if (::realpath(spec.c_str(), resolved) != nullptr) return resolved;
  }
  return spec;
}

BatchRow process_guest(const BatchPlan& plan, const std::string& spec) {
  BatchRow row;
  const guests::Guest guest = load_guest(spec);
  row.name = guest.name;
  const elf::Image image = guests::build_image(guest);

  if (plan.cmd == "campaign") {
    const fault::CampaignResult result =
        fault::run_campaign(image, guest.good_input, guest.bad_input, plan.campaign);
    row.ok = true;
    if (plan.campaign.models.order >= 3) {
      row.cells = {std::to_string(result.trace_length),
                   std::to_string(result.total_faults),
                   std::to_string(result.count(fault::Outcome::kSuccess)),
                   std::to_string(result.total_tuples),
                   std::to_string(result.tuple_count(fault::Outcome::kSuccess)),
                   std::to_string(result.strictly_order_k_count())};
    } else {
      row.cells = {std::to_string(result.trace_length),
                   std::to_string(result.total_faults),
                   std::to_string(result.count(fault::Outcome::kSuccess)),
                   std::to_string(result.total_pairs),
                   std::to_string(result.pair_count(fault::Outcome::kSuccess)),
                   std::to_string(result.strictly_second_order_count())};
    }
    row.json = "\"campaign\": " + result.to_json();
  } else if (plan.cmd == "fixpoint") {
    patch::PipelineConfig config;
    config.campaign = plan.campaign;
    config.max_iterations = plan.max_iterations;
    const patch::PipelineResult result =
        patch::faulter_patcher(image, guest.good_input, guest.bad_input, config);
    row.ok = plan.campaign.models.order >= 2 ? result.orderk_fixpoint : result.fixpoint;
    // Residual fault sets at the requested order: pairs for order-2 runs,
    // top-level tuples for order-3+ runs (whichever the final campaign ran).
    const std::uint64_t residual_sets =
        plan.campaign.models.order >= 3
            ? result.final_campaign.tuple_vulnerabilities.size()
            : result.final_campaign.pair_vulnerabilities.size();
    row.cells = {std::to_string(result.iterations.size()),
                 std::to_string(result.final_campaign.vulnerabilities.size()),
                 std::to_string(residual_sets),
                 support::format_fixed(result.order1_overhead_percent(), 1) + "%",
                 support::format_fixed(result.overhead_percent(), 1) + "%"};
    row.json = "\"fixpoint\": " + result.to_json();
  } else if (plan.cmd == "harden") {
    elf::Image hardened;
    if (plan.patterns) {
      patch::PipelineConfig config;
      config.campaign = plan.campaign;
      config.max_iterations = plan.max_iterations;
      hardened = patch::faulter_patcher(image, guest.good_input, guest.bad_input, config)
                     .hardened;
    } else {
      hardened = harden::hybrid_harden(image).hardened;
    }
    const emu::RunResult good = emu::run_image(hardened, guest.good_input);
    const emu::RunResult bad = emu::run_image(hardened, guest.bad_input);
    row.ok = good.exit_code == guest.good_exit && good.output == guest.good_output &&
             bad.exit_code == guest.bad_exit && bad.output == guest.bad_output;
    const double overhead =
        image.code_size() == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(hardened.code_size()) -
                   static_cast<double>(image.code_size())) /
                  static_cast<double>(image.code_size());
    row.cells = {plan.patterns ? "patterns" : "hybrid", std::to_string(image.code_size()),
                 std::to_string(hardened.code_size()),
                 support::format_fixed(overhead, 1) + "%"};
    row.json = "\"harden\": {\"approach\": " +
               support::json_quote(plan.patterns ? "patterns" : "hybrid") +
               ", \"original_code_size\": " + std::to_string(image.code_size()) +
               ", \"hardened_code_size\": " + std::to_string(hardened.code_size()) +
               ", \"behaviour_intact\": " + (row.ok ? "true" : "false") + "}";
  } else {  // lift
    const bir::Module module = bir::recover(image);
    row.ok = true;
    row.cells = {std::to_string(module.instruction_count()),
                 std::to_string(image.code_size())};
    row.json = "\"lift\": {\"instructions\": " + std::to_string(module.instruction_count()) +
               ", \"code_size\": " + std::to_string(image.code_size()) + "}";
  }
  return row;
}

}  // namespace

int run_batch(const ArgParser& args, std::ostream& out, std::ostream& err) {
  BatchPlan plan;
  plan.cmd = args.value_or("--cmd", "campaign");
  if (plan.cmd != "campaign" && plan.cmd != "fixpoint" && plan.cmd != "harden" &&
      plan.cmd != "lift") {
    err << "r2r batch: unknown --cmd '" << plan.cmd
        << "' (expected campaign, fixpoint, harden, or lift)\n";
    return 2;
  }
  const Format format = format_from(args);
  plan.campaign = campaign_config_from(args);
  plan.max_iterations = static_cast<unsigned>(args.count_or("--max-iterations", 12));
  plan.patterns = args.has("--patterns");

  std::vector<std::string> raw_specs = args.positionals();
  if (const auto dir = args.value("--dir")) {
    for (std::string& spec : discover_guest_specs(*dir)) {
      raw_specs.push_back(std::move(spec));
    }
  }
  // Dedupe by resolved identity (first occurrence wins, so ordering — and
  // with it the -j1 == -j8 byte-identity of the summary — is preserved).
  // Without this a spec repeated on the command line, or listed both
  // positionally and via --dir, is silently simulated twice and counted
  // twice in the summary.
  std::vector<std::string> specs;
  std::vector<std::pair<std::string, std::string>> seen;  // identity -> first spec
  for (std::string& spec : raw_specs) {
    const std::string identity = spec_identity(spec);
    const auto it =
        std::find_if(seen.begin(), seen.end(),
                     [&](const auto& entry) { return entry.first == identity; });
    if (it != seen.end()) {
      err << "r2r batch: duplicate guest spec '" << spec << "' (same guest as '"
          << it->second << "'); processing once\n";
      continue;
    }
    seen.emplace_back(identity, spec);
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    err << "r2r batch: no guests (pass specs and/or --dir; try 'r2r batch --help')\n";
    return 2;
  }

  unsigned workers = static_cast<unsigned>(args.count_or("-j", 1));
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, specs.size()));

  // Shard guests across the pool; slot-per-guest writes keep aggregation
  // order independent of scheduling.
  obs::Span batch_span("batch.run", obs::args_u64({{"guests", specs.size()}}));
  obs::Progress progress("batch " + plan.cmd, specs.size());
  std::vector<BatchRow> rows(specs.size());
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= specs.size()) return;
      obs::Span span("batch.guest",
                     "{\"spec\": " + support::json_quote(specs[index]) + "}");
      try {
        rows[index] = process_guest(plan, specs[index]);
      } catch (const std::exception& error) {
        rows[index].name = specs[index];
        rows[index].ok = false;
        rows[index].error = error.what();
      }
      progress.tick(1);
    }
  };
  std::vector<std::thread> pool;
  for (unsigned i = 1; i < workers; ++i) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();

  // Two distinct kinds of "not ok": a guest whose check genuinely came
  // back negative (row.ok false, no error) and a guest that never produced
  // a verdict because processing threw (row.error set). Conflating them in
  // one count — and one exit code — made a worker exception look like a
  // hardening failure.
  std::size_t failed = 0;
  std::size_t errored = 0;
  for (const BatchRow& row : rows) {
    if (!row.error.empty()) {
      ++errored;
    } else if (!row.ok) {
      ++failed;
    }
  }
  obs::Metrics::instance().counter("batch.guests").add(rows.size());
  obs::Metrics::instance().counter("batch.failed").add(failed);
  obs::Metrics::instance().counter("batch.infra_errors").add(errored);

  std::string text;
  if (format == Format::kJson) {
    text = "{\n  \"command\": " + support::json_quote(plan.cmd) + ",\n  \"guests\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BatchRow& row = rows[i];
      text += "    {\"name\": " + support::json_quote(row.name) +
              ", \"ok\": " + (row.ok ? "true" : "false");
      if (!row.error.empty()) {
        text += ", \"errored\": true, \"error\": " + support::json_quote(row.error);
      }
      if (!row.json.empty()) {
        // The nested document keeps its pretty-printed newlines; only the
        // trailing one is trimmed so the closing brace stays on the row.
        std::string body = row.json;
        while (!body.empty() && body.back() == '\n') body.pop_back();
        text += ", " + body;
      }
      text += "}";
      text += i + 1 < rows.size() ? ",\n" : "\n";
    }
    text += "  ],\n  \"failed\": " + std::to_string(failed) +
            ",\n  \"errored\": " + std::to_string(errored) + "\n}\n";
  } else {
    harden::TextTable table;
    table.add_row(header_for(plan.cmd, plan.campaign.models.order));
    for (const BatchRow& row : rows) {
      std::vector<std::string> cells = {
          row.name, !row.error.empty() ? "ERROR" : row.ok ? "ok" : "FAILED"};
      if (row.error.empty()) {
        cells.insert(cells.end(), row.cells.begin(), row.cells.end());
      } else {
        // Error text lands in a table cell; '|' would split it into
        // spurious columns (both renderings use pipe rows).
        std::string error = row.error;
        for (char& c : error) {
          if (c == '|') c = '/';
        }
        cells.push_back(error);
      }
      table.add_row(std::move(cells));
    }
    const std::string summary_line =
        "batch " + plan.cmd + ": " + std::to_string(rows.size()) + " guest(s), " +
        std::to_string(rows.size() - failed - errored) + " ok, " +
        std::to_string(failed) + " failed, " + std::to_string(errored) + " errored\n";
    if (format == Format::kMarkdown) {
      text = "## r2r batch " + plan.cmd + "\n\n" + table.render_markdown() + "\n" +
             summary_line;
    } else {
      text = table.render() + summary_line;
    }
  }
  emit_output(args, out, text);
  // Infra errors dominate: a run that never finished its measurements must
  // not masquerade as "a guest failed its check".
  if (errored != 0) return svc::kInfraExitCode;
  return failed == 0 ? 0 : 1;
}

}  // namespace r2r::cli
