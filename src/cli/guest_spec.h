// r2r::cli — guest-spec resolution and bundle IO.
//
// Every subcommand addresses its target program the same way, as a *guest
// spec*:
//
//   pincheck | bootloader | toymov   a built-in case study (guests::)
//   synth:<seed>                     a generated guest (guests::synth)
//   path/to/prog.s                   assembly in the r2r dialect; the
//                                    good/bad inputs come from the
//                                    <stem>.good / <stem>.bad sidecar
//                                    files, or from --good-input /
//                                    --bad-input overrides
//
// `r2r synth --out DIR` writes exactly the sidecar layout `r2r batch
// --dir DIR` discovers, so generated corpora round-trip through the CLI.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "guests/guests.h"

namespace r2r::cli {

/// Process-wide target selection (the --target global flag). load_guest
/// resolves built-in names against this target's registry, generates synth
/// guests in its dialect, and stamps file guests with it; cli::run() scopes
/// the setting to one invocation, so in-process callers (tests, the batch
/// driver) never leak a target into the next run.
void set_active_target(isa::Arch arch);
isa::Arch active_target();

/// Inline input overrides (the --good-input / --bad-input flags). A value
/// of the form "@path" reads the bytes of `path` instead.
struct GuestOverrides {
  std::optional<std::string> good_input;
  std::optional<std::string> bad_input;
};

/// Resolves `spec` into a fully-populated Guest. For ".s" file specs the
/// expected outputs/exit codes are derived by running the assembled image
/// on the resolved inputs (missing inputs leave the oracle fields empty —
/// enough for `lift`, rejected later by commands that need a campaign).
/// Throws support::Error{kInvalidArgument} on an unresolvable spec.
guests::Guest load_guest(const std::string& spec, const GuestOverrides& overrides = {});

/// Writes <dir>/<name>.s, .good, .bad and .expect.json; creates `dir` if
/// missing. Returns the paths written, in that order.
std::vector<std::string> write_guest_bundle(const guests::Guest& guest,
                                            const std::string& dir);

/// The guest specs of a bundle directory: every "*.s" path, sorted by
/// name (deterministic batch order). Throws on an unreadable directory.
std::vector<std::string> discover_guest_specs(const std::string& dir);

/// Whole-file IO helpers (binary-safe). Throw Error{kInvalidArgument} /
/// Error{kExecution} on failure.
std::string read_file(const std::string& path);
void write_file(const std::string& path, std::string_view bytes);

}  // namespace r2r::cli
