#include "cli/guest_spec.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "emu/machine.h"
#include "guests/synth.h"
#include "isa/target.h"
#include "support/error.h"
#include "support/strings.h"

namespace r2r::cli {

namespace fs = std::filesystem;
using support::ErrorKind;
using support::fail;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorKind::kInvalidArgument, "cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorKind::kExecution, "cannot write '" + path + "'");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) fail(ErrorKind::kExecution, "short write to '" + path + "'");
}

namespace {

isa::Arch g_active_target = isa::Arch::kX64;

std::string resolve_input(const std::string& value) {
  if (!value.empty() && value.front() == '@') return read_file(value.substr(1));
  return value;
}

/// Fills the oracle fields of a file-based guest by running the assembled
/// image on its inputs (the CLI analogue of the hand-maintained expected
/// outputs of the built-in guests).
void derive_oracle(guests::Guest& guest) {
  const elf::Image image = guests::build_image(guest);
  const emu::RunResult good = emu::run_image(image, guest.good_input);
  const emu::RunResult bad = emu::run_image(image, guest.bad_input);
  guest.good_output = good.output;
  guest.bad_output = bad.output;
  guest.good_exit = static_cast<int>(good.exit_code);
  guest.bad_exit = static_cast<int>(bad.exit_code);
}

}  // namespace

void set_active_target(isa::Arch arch) { g_active_target = arch; }

isa::Arch active_target() { return g_active_target; }

guests::Guest load_guest(const std::string& spec, const GuestOverrides& overrides) {
  guests::Guest guest;
  // Built-in and synth guests carry a hand-/generator-maintained oracle;
  // file guests (and any guest whose inputs were overridden) get theirs
  // derived by running the assembled image below.
  bool needs_oracle = false;
  if (const guests::Guest* builtin = guests::find_guest(spec, active_target())) {
    guest = *builtin;
  } else if (spec.rfind("synth:", 0) == 0) {
    const auto seed = support::parse_integer(spec.substr(6));
    if (!seed.has_value() || *seed < 0) {
      fail(ErrorKind::kInvalidArgument,
           "malformed synth spec '" + spec + "' (expected synth:<seed>)");
    }
    guest = guests::synth::generate(static_cast<std::uint64_t>(*seed), active_target());
  } else if (spec.size() > 2 && spec.ends_with(".s")) {
    guest.name = fs::path(spec).stem().string();
    guest.arch = active_target();
    guest.assembly = read_file(spec);
    const std::string stem = (fs::path(spec).parent_path() / guest.name).string();
    if (fs::exists(stem + ".good")) guest.good_input = read_file(stem + ".good");
    if (fs::exists(stem + ".bad")) guest.bad_input = read_file(stem + ".bad");
    needs_oracle = !guest.good_input.empty() || !guest.bad_input.empty();
  } else if (guests::find_guest(spec) != nullptr ||
             guests::find_guest(spec, isa::Arch::kRv32i) != nullptr) {
    fail(ErrorKind::kInvalidArgument,
         "guest '" + spec + "' has no port for target '" +
             std::string(isa::target(active_target()).name()) + "'");
  } else {
    fail(ErrorKind::kInvalidArgument,
         "unknown guest spec '" + spec +
             "' (expected a built-in name, synth:<seed>, or a path ending in .s)");
  }
  if (overrides.good_input) {
    guest.good_input = resolve_input(*overrides.good_input);
    needs_oracle = true;
  }
  if (overrides.bad_input) {
    guest.bad_input = resolve_input(*overrides.bad_input);
    needs_oracle = true;
  }
  if (needs_oracle) derive_oracle(guest);
  return guest;
}

std::vector<std::string> write_guest_bundle(const guests::Guest& guest,
                                            const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) fail(ErrorKind::kExecution, "cannot create directory '" + dir + "'");
  const std::string stem = (fs::path(dir) / guest.name).string();

  std::string expect = "{\n";
  expect += "  \"name\": " + support::json_quote(guest.name) + ",\n";
  expect += "  \"good_exit\": " + std::to_string(guest.good_exit) + ",\n";
  expect += "  \"bad_exit\": " + std::to_string(guest.bad_exit) + ",\n";
  expect += "  \"good_output\": " + support::json_quote(guest.good_output) + ",\n";
  expect += "  \"bad_output\": " + support::json_quote(guest.bad_output) + "\n";
  expect += "}\n";

  const std::vector<std::pair<std::string, std::string_view>> files = {
      {stem + ".s", guest.assembly},
      {stem + ".good", guest.good_input},
      {stem + ".bad", guest.bad_input},
      {stem + ".expect.json", expect},
  };
  std::vector<std::string> paths;
  for (const auto& [path, bytes] : files) {
    write_file(path, bytes);
    paths.push_back(path);
  }
  return paths;
}

std::vector<std::string> discover_guest_specs(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) fail(ErrorKind::kInvalidArgument, "cannot read directory '" + dir + "'");
  std::vector<std::string> specs;
  for (const fs::directory_entry& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".s") {
      specs.push_back(entry.path().string());
    }
  }
  std::sort(specs.begin(), specs.end());
  return specs;
}

}  // namespace r2r::cli
