// r2r::cli — the unified driver behind the `r2r` binary.
//
//   r2r lift | harden | campaign | fixpoint | synth | batch
//       | serve | submit | status | shutdown
//
// One subcommand per pipeline stage, every knob the examples used to
// hard-code exposed as a parsed flag over the library's defaulted config
// structs. run() is the whole CLI behind a stream interface, so tests and
// the batch driver execute subcommands in-process and golden-compare their
// output byte-for-byte.
//
// Exit codes (shared by every subcommand):
//   0  success (and, where the command checks something, the check passed)
//   1  the command ran but its check failed (fix-point not reached,
//      hardened behaviour broken, a batch row failed), or a runtime error
//   2  usage error (unknown command/flag, malformed value, bad guest spec)
//   3  infrastructure error (svc::kInfraExitCode): the measurement never
//      finished — a batch row threw, the r2rd daemon was unreachable or
//      refused the job, a daemon worker crashed — as opposed to "the check
//      ran and came back negative"
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cli/args.h"
#include "cli/guest_spec.h"
#include "fault/campaign.h"

namespace r2r::cli {

/// One registered subcommand: its parser factory doubles as the help/docs
/// source, its runner gets the parsed flags plus the output streams.
struct Command {
  std::string_view name;
  std::string_view summary;  ///< one line for the top-level help
  ArgParser (*make_parser)();
  int (*run)(const ArgParser& args, std::ostream& out, std::ostream& err);
};

/// The registry, in help order.
const std::vector<Command>& commands();

/// Top-level entry point: args are argv[1..]. Dispatches, parses, prints
/// help, maps exceptions onto the exit-code contract above.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// The `r2r --help` text (golden-tested against docs/r2r.md).
std::string top_level_help();

// ---- shared flag bundles ----------------------------------------------------

/// Output shaping shared by the reporting commands.
enum class Format { kText, kJson, kMarkdown };

/// Registers --format/--out. `formats` names the accepted set in help.
void add_format_flags(ArgParser& parser);
Format format_from(const ArgParser& parser);

/// Writes `text` to --out when given (echoing a one-line confirmation to
/// `out`), to `out` otherwise.
void emit_output(const ArgParser& parser, std::ostream& out, const std::string& text);

/// Registers --good-input/--bad-input.
void add_guest_flags(ArgParser& parser);
GuestOverrides overrides_from(const ArgParser& parser);

/// Registers the campaign knobs: --model, --order, --pair-window,
/// --threads, --no-reuse.
void add_campaign_flags(ArgParser& parser);

/// Builds the campaign config the flags select (models parsed against
/// sim::fault_model_names()). Throws Error{kInvalidArgument} on an unknown
/// model or order outside {1, 2}.
fault::CampaignConfig campaign_config_from(const ArgParser& parser);

// ---- subcommand entry points (one per src/cli/cmd_*.cpp) --------------------

ArgParser make_lift_parser();
int run_lift(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_harden_parser();
int run_harden(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_campaign_parser();
int run_campaign_cmd(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_fixpoint_parser();
int run_fixpoint(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_synth_parser();
int run_synth(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_batch_parser();
int run_batch(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_serve_parser();
int run_serve(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_submit_parser();
int run_submit(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_status_parser();
int run_status(const ArgParser& args, std::ostream& out, std::ostream& err);
ArgParser make_shutdown_parser();
int run_shutdown(const ArgParser& args, std::ostream& out, std::ostream& err);

}  // namespace r2r::cli
