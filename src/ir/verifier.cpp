#include "ir/verifier.h"

#include <set>

#include "support/error.h"

namespace r2r::ir {

namespace {

using support::check;
using support::ErrorKind;

void verify_function(const Module& module, const Function& fn) {
  const std::string where = "function @" + fn.name() + ": ";
  if (fn.is_intrinsic()) {
    check(fn.blocks.empty(), ErrorKind::kIr, where + "intrinsic with a body");
    return;
  }
  check(!fn.blocks.empty(), ErrorKind::kIr, where + "no blocks");

  std::set<const BasicBlock*> own_blocks;
  for (const auto& block : fn.blocks) own_blocks.insert(block.get());

  // All instruction results defined anywhere in this function.
  std::set<const Value*> defined;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block->instrs) defined.insert(instr.get());
  }

  for (const auto& block : fn.blocks) {
    const std::string at = where + "block %" + block->name() + ": ";
    check(!block->instrs.empty(), ErrorKind::kIr, at + "empty block");
    for (std::size_t i = 0; i < block->instrs.size(); ++i) {
      const Instr& instr = *block->instrs[i];
      const bool last = (i + 1 == block->instrs.size());
      check(instr.is_terminator() == last, ErrorKind::kIr,
            at + (last ? "missing terminator" : "terminator in the middle"));

      for (const Value* op : instr.operands) {
        check(op != nullptr, ErrorKind::kIr, at + "null operand");
        if (op->kind() == Value::Kind::kInstr) {
          check(defined.contains(op), ErrorKind::kIr,
                at + "operand defined in another function");
        }
      }
      for (const BasicBlock* target : instr.targets) {
        check(own_blocks.contains(target), ErrorKind::kIr,
              at + "branch target outside function");
      }

      switch (instr.opcode()) {
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kLShr:
        case Opcode::kAShr:
          check(instr.operands.size() == 2, ErrorKind::kIr, at + "binary arity");
          check(instr.operands[0]->type() == instr.type() &&
                    instr.operands[1]->type() == instr.type(),
                ErrorKind::kIr, at + "binary type mismatch");
          check(instr.type() != Type::kVoid, ErrorKind::kIr, at + "void arithmetic");
          break;
        case Opcode::kICmp:
          check(instr.operands.size() == 2, ErrorKind::kIr, at + "icmp arity");
          check(instr.type() == Type::kI1, ErrorKind::kIr, at + "icmp must yield i1");
          check(instr.operands[0]->type() == instr.operands[1]->type(), ErrorKind::kIr,
                at + "icmp operand mismatch");
          break;
        case Opcode::kZExt:
        case Opcode::kSExt:
          check(instr.operands.size() == 1, ErrorKind::kIr, at + "ext arity");
          check(type_bits(instr.type()) > type_bits(instr.operands[0]->type()),
                ErrorKind::kIr, at + "ext must widen");
          break;
        case Opcode::kTrunc:
          check(instr.operands.size() == 1, ErrorKind::kIr, at + "trunc arity");
          check(type_bits(instr.type()) < type_bits(instr.operands[0]->type()),
                ErrorKind::kIr, at + "trunc must narrow");
          break;
        case Opcode::kSelect:
          check(instr.operands.size() == 3, ErrorKind::kIr, at + "select arity");
          check(instr.operands[0]->type() == Type::kI1, ErrorKind::kIr,
                at + "select condition must be i1");
          check(instr.operands[1]->type() == instr.type() &&
                    instr.operands[2]->type() == instr.type(),
                ErrorKind::kIr, at + "select type mismatch");
          break;
        case Opcode::kLoad:
          check(instr.operands.size() == 1, ErrorKind::kIr, at + "load arity");
          check(instr.operands[0]->type() == Type::kI64, ErrorKind::kIr,
                at + "load address must be i64");
          check(instr.type() == Type::kI8 || instr.type() == Type::kI32 ||
                    instr.type() == Type::kI64,
                ErrorKind::kIr, at + "load type must be i8, i32 or i64");
          break;
        case Opcode::kStore:
          check(instr.operands.size() == 2, ErrorKind::kIr, at + "store arity");
          check(instr.operands[1]->type() == Type::kI64, ErrorKind::kIr,
                at + "store address must be i64");
          check(instr.operands[0]->type() == Type::kI8 ||
                    instr.operands[0]->type() == Type::kI32 ||
                    instr.operands[0]->type() == Type::kI64,
                ErrorKind::kIr, at + "store value must be i8, i32 or i64");
          break;
        case Opcode::kBr:
          check(instr.targets.size() == 1, ErrorKind::kIr, at + "br target count");
          break;
        case Opcode::kCondBr:
          check(instr.targets.size() == 2 && instr.operands.size() == 1, ErrorKind::kIr,
                at + "condbr shape");
          check(instr.operands[0]->type() == Type::kI1, ErrorKind::kIr,
                at + "condbr condition must be i1");
          break;
        case Opcode::kSwitch:
          check(instr.operands.size() == 1, ErrorKind::kIr, at + "switch arity");
          check(instr.targets.size() == instr.case_values.size() + 1, ErrorKind::kIr,
                at + "switch case/target mismatch");
          break;
        case Opcode::kRet:
          check(fn.return_type() == Type::kVoid, ErrorKind::kIr,
                at + "non-void function return");
          break;
        case Opcode::kUnreachable:
          break;
        case Opcode::kCall: {
          check(instr.callee != nullptr, ErrorKind::kIr, at + "call without callee");
          check(module.find_function(instr.callee->name()) == instr.callee,
                ErrorKind::kIr, at + "callee not in module");
          check(instr.operands.size() == instr.callee->param_count(), ErrorKind::kIr,
                at + "call argument count mismatch");
          check(instr.type() == instr.callee->return_type(), ErrorKind::kIr,
                at + "call result type mismatch");
          break;
        }
      }
    }

    // Straight-line def-before-use inside the block.
    std::set<const Value*> seen;
    for (const auto& instr : block->instrs) {
      for (const Value* op : instr->operands) {
        if (op->kind() != Value::Kind::kInstr) continue;
        bool in_this_block = false;
        for (const auto& candidate : block->instrs) {
          if (candidate.get() == op) {
            in_this_block = true;
            break;
          }
        }
        if (in_this_block) {
          check(seen.contains(op), ErrorKind::kIr,
                at + "use before definition within block");
        }
      }
      seen.insert(instr.get());
    }
  }
}

}  // namespace

void verify(const Module& module) {
  std::set<std::string_view> names;
  for (const auto& fn : module.functions) {
    check(names.insert(fn->name()).second, ErrorKind::kIr,
          "duplicate function @" + fn->name());
    verify_function(module, *fn);
  }
  std::set<std::string_view> global_names;
  for (const auto& global : module.globals) {
    check(global_names.insert(global->name()).second, ErrorKind::kIr,
          "duplicate global @" + global->name());
    check(global->size() > 0, ErrorKind::kIr, "empty global @" + global->name());
  }
}

}  // namespace r2r::ir
