// r2r::ir — a compact SSA compiler IR ("mini-LLVM").
//
// The Hybrid approach (Section IV-C) lifts the binary into this IR, runs
// countermeasure passes, and lowers back to the subset ISA. The IR mirrors
// the LLVM properties the paper relies on: SSA values, the
// module/function/basic-block/instruction hierarchy, globals, typed
// integer operations, and a switch terminator (used by the duplicated
// checksum validation of Fig. 5).
//
// Ownership: Module owns Functions and GlobalVariables; Function owns
// BasicBlocks; BasicBlock owns Instrs. Operands are non-owning Value*.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace r2r::ir {

enum class Type : std::uint8_t { kVoid, kI1, kI8, kI32, kI64 };

std::string_view to_string(Type type) noexcept;
unsigned type_bits(Type type) noexcept;

enum class Opcode : std::uint8_t {
  // arithmetic / bitwise (i64 or i8)
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kLShr, kAShr,
  // comparisons / conversions
  kICmp,   // predicate in Instr::pred, result i1
  kZExt,   // to wider type
  kSExt,
  kTrunc,  // to narrower type
  kSelect, // (i1, a, b)
  // memory
  kLoad,   // (address i64) -> value; access size from result type
  kStore,  // (value, address i64)
  // control flow (terminators)
  kBr,      // unconditional; targets[0]
  kCondBr,  // (cond i1); targets[0]=true, targets[1]=false
  kSwitch,  // (value i64); targets[0]=default, case_values[i] -> targets[i+1]
  kRet,     // void return
  kUnreachable,
  // calls
  kCall,  // callee + arg operands; result type = callee return type
};

std::string_view to_string(Opcode opcode) noexcept;

enum class Pred : std::uint8_t { kEq, kNe, kUlt, kUle, kUgt, kUge, kSlt, kSle, kSgt, kSge };

std::string_view to_string(Pred pred) noexcept;

class BasicBlock;
class Function;
class Module;

/// Base of everything that can be an operand.
class Value {
 public:
  enum class Kind : std::uint8_t { kInstr, kConstant, kGlobal };

  Value(Kind kind, Type type) : kind_(kind), type_(type) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] Type type() const noexcept { return type_; }

 private:
  Kind kind_;
  Type type_;
};

/// Integer constant (also used for i1 true/false).
class Constant final : public Value {
 public:
  Constant(Type type, std::uint64_t value)
      : Value(Kind::kConstant, type), value_(value) {}
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_;
};

/// A module-level mutable slot with a fixed size; used for the lifted CPU
/// state (registers/flags) and the guest stack. As in LLVM, using a global
/// as an operand yields its *address* (type i64).
class GlobalVariable final : public Value {
 public:
  GlobalVariable(std::string name, std::uint64_t size, std::vector<std::uint8_t> init)
      : Value(Kind::kGlobal, Type::kI64),
        name_(std::move(name)),
        size_(size),
        init_(std::move(init)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::vector<std::uint8_t>& init() const noexcept { return init_; }

  /// Assigned by lowering (and by the interpreter when mapping state).
  std::uint64_t address = 0;

 private:
  std::string name_;
  std::uint64_t size_;
  std::vector<std::uint8_t> init_;
};

class Instr final : public Value {
 public:
  Instr(Opcode opcode, Type type) : Value(Kind::kInstr, type), opcode_(opcode) {}

  [[nodiscard]] Opcode opcode() const noexcept { return opcode_; }

  std::vector<Value*> operands;
  std::vector<BasicBlock*> targets;          ///< br/condbr/switch
  std::vector<std::uint64_t> case_values;    ///< switch case constants
  Pred pred = Pred::kEq;                     ///< icmp
  Function* callee = nullptr;                ///< call

  /// Printer/debug id, assigned lazily by the printer.
  mutable int print_id = -1;

  [[nodiscard]] bool is_terminator() const noexcept {
    switch (opcode_) {
      case Opcode::kBr:
      case Opcode::kCondBr:
      case Opcode::kSwitch:
      case Opcode::kRet:
      case Opcode::kUnreachable:
        return true;
      default:
        return false;
    }
  }
  [[nodiscard]] bool has_side_effects() const noexcept {
    switch (opcode_) {
      case Opcode::kStore:
      case Opcode::kCall:
        return true;
      default:
        return is_terminator();
    }
  }

 private:
  Opcode opcode_;
};

class BasicBlock {
 public:
  explicit BasicBlock(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::vector<std::unique_ptr<Instr>> instrs;

  [[nodiscard]] Instr* terminator() const noexcept {
    if (instrs.empty()) return nullptr;
    Instr* last = instrs.back().get();
    return last->is_terminator() ? last : nullptr;
  }

 private:
  std::string name_;
};

class Function {
 public:
  Function(std::string name, Type return_type, unsigned param_count,
           bool is_intrinsic)
      : name_(std::move(name)),
        return_type_(return_type),
        param_count_(param_count),
        intrinsic_(is_intrinsic) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Type return_type() const noexcept { return return_type_; }
  [[nodiscard]] unsigned param_count() const noexcept { return param_count_; }
  [[nodiscard]] bool is_intrinsic() const noexcept { return intrinsic_; }
  [[nodiscard]] BasicBlock* entry() const noexcept {
    return blocks.empty() ? nullptr : blocks.front().get();
  }

  std::vector<std::unique_ptr<BasicBlock>> blocks;

  BasicBlock* add_block(std::string name) {
    blocks.push_back(std::make_unique<BasicBlock>(std::move(name)));
    return blocks.back().get();
  }

 private:
  std::string name_;
  Type return_type_;
  unsigned param_count_;
  bool intrinsic_;
};

class Module {
 public:
  std::vector<std::unique_ptr<Function>> functions;
  std::vector<std::unique_ptr<GlobalVariable>> globals;
  std::string entry_function = "_start";

  Function* add_function(std::string name, Type return_type = Type::kVoid,
                         unsigned param_count = 0, bool is_intrinsic = false) {
    functions.push_back(std::make_unique<Function>(std::move(name), return_type,
                                                   param_count, is_intrinsic));
    return functions.back().get();
  }

  GlobalVariable* add_global(std::string name, std::uint64_t size,
                             std::vector<std::uint8_t> init = {}) {
    globals.push_back(
        std::make_unique<GlobalVariable>(std::move(name), size, std::move(init)));
    return globals.back().get();
  }

  [[nodiscard]] Function* find_function(std::string_view name) const noexcept {
    for (const auto& fn : functions) {
      if (fn->name() == name) return fn.get();
    }
    return nullptr;
  }

  [[nodiscard]] GlobalVariable* find_global(std::string_view name) const noexcept {
    for (const auto& global : globals) {
      if (global->name() == name) return global.get();
    }
    return nullptr;
  }

  /// Interned constant (unique per type+value pair).
  Constant* get_constant(Type type, std::uint64_t value);

  /// Declares (or returns) an intrinsic function by name.
  Function* get_intrinsic(std::string_view name, Type return_type, unsigned params);

 private:
  std::vector<std::unique_ptr<Constant>> constants_;
};

/// Intrinsic names understood by the interpreter and the lowering:
///   r2r.syscall(rax, rdi, rsi, rdx) -> i64
///   r2r.trap()                      -> void  (fault response, never returns)
inline constexpr std::string_view kSyscallIntrinsic = "r2r.syscall";
inline constexpr std::string_view kTrapIntrinsic = "r2r.trap";

}  // namespace r2r::ir
