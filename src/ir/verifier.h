// r2r::ir — structural and type verification.
#pragma once

#include "ir/ir.h"

namespace r2r::ir {

/// Verifies the module; throws Error{kIr} describing the first violation.
/// Checks: every block has exactly one terminator (at the end); operand
/// and result types match per opcode; branch targets belong to the same
/// function; switch case counts are consistent; calls match the callee
/// signature; instruction operands are defined within the same function
/// before use (straight-line dominance per block, definition-anywhere for
/// cross-block uses — full dominance is out of scope and documented).
void verify(const Module& module);

}  // namespace r2r::ir
