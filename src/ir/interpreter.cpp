#include "ir/interpreter.h"

#include <map>

#include "support/bits.h"
#include "support/error.h"

namespace r2r::ir {

namespace {

using support::ErrorKind;
using support::sign_extend;
using support::truncate;

struct ExitRequested {
  std::int64_t code;
};
struct TrapRequested {};

class Engine {
 public:
  Engine(const Module& module, emu::Memory& memory, std::string stdin_data,
         const InterpConfig& config)
      : module_(module), memory_(memory), stdin_(std::move(stdin_data)), config_(config) {}

  InterpResult run() {
    InterpResult result;
    try {
      map_globals();
      const Function* entry = module_.find_function(module_.entry_function);
      support::check(entry != nullptr, ErrorKind::kIr,
                     "entry function not found: " + module_.entry_function);
      execute_function(*entry, 0);
      result.stop = InterpStop::kReturned;
    } catch (const ExitRequested& exit) {
      result.stop = InterpStop::kExited;
      result.exit_code = exit.code;
    } catch (const TrapRequested&) {
      result.stop = InterpStop::kTrapped;
    } catch (const FuelExhausted&) {
      result.stop = InterpStop::kFuel;
    } catch (const support::Error& error) {
      result.stop = InterpStop::kCrashed;
      result.crash_detail = error.what();
    }
    result.output = std::move(output_);
    result.steps = steps_;
    return result;
  }

 private:
  struct FuelExhausted {};

  void map_globals() {
    std::uint64_t total = 0;
    for (const auto& global : module_.globals) {
      global->address = config_.globals_base + total;
      total += (global->size() + 15) & ~std::uint64_t{15};
    }
    if (total > 0) {
      memory_.map("[ir-globals]", config_.globals_base, total,
                  elf::kRead | elf::kWrite);
      for (const auto& global : module_.globals) {
        if (!global->init().empty()) memory_.write_block(global->address, global->init());
      }
    }
  }

  static unsigned bytes_of(Type type) {
    if (type == Type::kI8) return 1;
    if (type == Type::kI32) return 4;
    return 8;
  }

  std::uint64_t eval(const std::map<const Instr*, std::uint64_t>& frame,
                     const Value* value) {
    switch (value->kind()) {
      case Value::Kind::kConstant:
        return static_cast<const Constant*>(value)->value();
      case Value::Kind::kGlobal:
        return static_cast<const GlobalVariable*>(value)->address;
      case Value::Kind::kInstr: {
        const auto it = frame.find(static_cast<const Instr*>(value));
        support::check(it != frame.end(), ErrorKind::kIr,
                       "interpreter: use of undefined value");
        return it->second;
      }
    }
    return 0;
  }

  std::uint64_t intrinsic_syscall(std::uint64_t number, std::uint64_t a0,
                                  std::uint64_t a1, std::uint64_t a2) {
    switch (number) {
      case 0: {  // read
        if (a0 != 0) return static_cast<std::uint64_t>(-9);
        std::uint64_t count = a2;
        const std::uint64_t available = stdin_.size() - stdin_pos_;
        if (count > available) count = available;
        for (std::uint64_t i = 0; i < count; ++i) {
          memory_.write(a1 + i, static_cast<std::uint8_t>(stdin_[stdin_pos_ + i]), 1);
        }
        stdin_pos_ += count;
        return count;
      }
      case 1: {  // write
        if (a0 != 1 && a0 != 2) return static_cast<std::uint64_t>(-9);
        for (std::uint64_t i = 0; i < a2; ++i) {
          output_.push_back(static_cast<char>(memory_.read(a1 + i, 1)));
        }
        return a2;
      }
      case 60:
        throw ExitRequested{static_cast<std::int64_t>(a0)};
      default:
        return static_cast<std::uint64_t>(-38);  // ENOSYS
    }
  }

  void execute_function(const Function& fn, unsigned depth) {
    support::check(depth < config_.max_call_depth, ErrorKind::kIr,
                   "interpreter: call depth exceeded");
    support::check(!fn.is_intrinsic() && fn.entry() != nullptr, ErrorKind::kIr,
                   "interpreter: cannot execute intrinsic or empty function");

    std::map<const Instr*, std::uint64_t> frame;
    const BasicBlock* block = fn.entry();
    while (true) {
      const BasicBlock* next = nullptr;
      for (const auto& instr_ptr : block->instrs) {
        const Instr& instr = *instr_ptr;
        if (++steps_ > config_.fuel) throw FuelExhausted{};
        const unsigned bits = type_bits(instr.type());

        switch (instr.opcode()) {
          case Opcode::kAdd:
          case Opcode::kSub:
          case Opcode::kMul:
          case Opcode::kAnd:
          case Opcode::kOr:
          case Opcode::kXor:
          case Opcode::kShl:
          case Opcode::kLShr:
          case Opcode::kAShr: {
            const std::uint64_t a = eval(frame, instr.operands[0]);
            const std::uint64_t b = eval(frame, instr.operands[1]);
            std::uint64_t r = 0;
            switch (instr.opcode()) {
              case Opcode::kAdd: r = a + b; break;
              case Opcode::kSub: r = a - b; break;
              case Opcode::kMul: r = a * b; break;
              case Opcode::kAnd: r = a & b; break;
              case Opcode::kOr: r = a | b; break;
              case Opcode::kXor: r = a ^ b; break;
              case Opcode::kShl: r = (b & 63) >= bits ? 0 : a << (b & 63); break;
              case Opcode::kLShr:
                r = (b & 63) >= bits ? 0 : truncate(a, bits) >> (b & 63);
                break;
              case Opcode::kAShr: {
                const std::int64_t sa = sign_extend(a, bits);
                const unsigned count = static_cast<unsigned>(b & 63);
                r = static_cast<std::uint64_t>(sa >> (count >= bits ? bits - 1 : count));
                break;
              }
              default: break;
            }
            frame[&instr] = truncate(r, bits);
            break;
          }
          case Opcode::kICmp: {
            const unsigned opbits = type_bits(instr.operands[0]->type());
            const std::uint64_t a = truncate(eval(frame, instr.operands[0]), opbits);
            const std::uint64_t b = truncate(eval(frame, instr.operands[1]), opbits);
            const std::int64_t sa = sign_extend(a, opbits);
            const std::int64_t sb = sign_extend(b, opbits);
            bool r = false;
            switch (instr.pred) {
              case Pred::kEq: r = a == b; break;
              case Pred::kNe: r = a != b; break;
              case Pred::kUlt: r = a < b; break;
              case Pred::kUle: r = a <= b; break;
              case Pred::kUgt: r = a > b; break;
              case Pred::kUge: r = a >= b; break;
              case Pred::kSlt: r = sa < sb; break;
              case Pred::kSle: r = sa <= sb; break;
              case Pred::kSgt: r = sa > sb; break;
              case Pred::kSge: r = sa >= sb; break;
            }
            frame[&instr] = r ? 1 : 0;
            break;
          }
          case Opcode::kZExt:
            frame[&instr] = truncate(eval(frame, instr.operands[0]),
                                     type_bits(instr.operands[0]->type()));
            break;
          case Opcode::kSExt:
            frame[&instr] = truncate(
                static_cast<std::uint64_t>(
                    sign_extend(eval(frame, instr.operands[0]),
                                type_bits(instr.operands[0]->type()))),
                bits);
            break;
          case Opcode::kTrunc:
            frame[&instr] = truncate(eval(frame, instr.operands[0]), bits);
            break;
          case Opcode::kSelect:
            frame[&instr] = eval(frame, instr.operands[0]) != 0
                                ? eval(frame, instr.operands[1])
                                : eval(frame, instr.operands[2]);
            break;
          case Opcode::kLoad:
            frame[&instr] =
                memory_.read(eval(frame, instr.operands[0]), bytes_of(instr.type()));
            break;
          case Opcode::kStore:
            memory_.write(eval(frame, instr.operands[1]),
                          eval(frame, instr.operands[0]),
                          bytes_of(instr.operands[0]->type()));
            break;
          case Opcode::kBr:
            next = instr.targets[0];
            break;
          case Opcode::kCondBr:
            next = eval(frame, instr.operands[0]) != 0 ? instr.targets[0]
                                                       : instr.targets[1];
            break;
          case Opcode::kSwitch: {
            const std::uint64_t value = eval(frame, instr.operands[0]);
            next = instr.targets[0];
            for (std::size_t c = 0; c < instr.case_values.size(); ++c) {
              if (instr.case_values[c] == value) {
                next = instr.targets[c + 1];
                break;
              }
            }
            break;
          }
          case Opcode::kRet:
            return;
          case Opcode::kUnreachable:
            support::fail(ErrorKind::kIr, "interpreter: reached unreachable");
          case Opcode::kCall: {
            const Function& callee = *instr.callee;
            if (callee.is_intrinsic()) {
              if (callee.name() == kSyscallIntrinsic) {
                frame[&instr] = intrinsic_syscall(eval(frame, instr.operands[0]),
                                                  eval(frame, instr.operands[1]),
                                                  eval(frame, instr.operands[2]),
                                                  eval(frame, instr.operands[3]));
              } else if (callee.name() == kTrapIntrinsic) {
                throw TrapRequested{};
              } else {
                support::fail(ErrorKind::kIr,
                              "interpreter: unknown intrinsic " + callee.name());
              }
            } else {
              execute_function(callee, depth + 1);
            }
            break;
          }
        }
      }
      support::check(next != nullptr, ErrorKind::kIr,
                     "interpreter: block fell through without terminator");
      block = next;
    }
  }

  const Module& module_;
  emu::Memory& memory_;
  std::string stdin_;
  std::size_t stdin_pos_ = 0;
  std::string output_;
  std::uint64_t steps_ = 0;
  const InterpConfig& config_;
};

}  // namespace

InterpResult interpret(const Module& module, emu::Memory& memory,
                       std::string stdin_data, const InterpConfig& config) {
  Engine engine(module, memory, std::move(stdin_data), config);
  return engine.run();
}

}  // namespace r2r::ir
