// r2r::ir — reference interpreter.
//
// Executes a lifted module directly against guest memory, with the same
// syscall surface as the machine emulator. Used for differential testing:
// machine(binary) ≡ interpret(lift(binary)) ≡ machine(lower(lift(binary)))
// on observable behaviour (output + exit code).
#pragma once

#include <cstdint>
#include <string>

#include "emu/memory.h"
#include "ir/ir.h"

namespace r2r::ir {

enum class InterpStop : std::uint8_t {
  kExited,    ///< r2r.syscall exit
  kTrapped,   ///< r2r.trap fired (fault response)
  kReturned,  ///< entry function returned without exiting
  kCrashed,   ///< memory violation or malformed execution
  kFuel,      ///< step budget exhausted
};

struct InterpResult {
  InterpStop stop = InterpStop::kCrashed;
  std::int64_t exit_code = -1;
  std::string output;
  std::string crash_detail;
  std::uint64_t steps = 0;
};

struct InterpConfig {
  std::uint64_t fuel = 8'000'000;
  unsigned max_call_depth = 64;
  /// Where the interpreter maps the module's globals.
  std::uint64_t globals_base = 0xA0'0000;
};

/// Runs `module` from its entry function. `memory` must already contain the
/// guest's data segments; the globals region is mapped by this call.
InterpResult interpret(const Module& module, emu::Memory& memory,
                       std::string stdin_data, const InterpConfig& config = {});

}  // namespace r2r::ir
