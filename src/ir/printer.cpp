#include "ir/printer.h"

#include <map>

#include "support/strings.h"

namespace r2r::ir {

namespace {

class FnPrinter {
 public:
  explicit FnPrinter(const Function& fn) : fn_(fn) {
    int next = 0;
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block->instrs) {
        if (instr->type() != Type::kVoid) ids_[instr.get()] = next++;
      }
    }
  }

  std::string value_ref(const Value* value) const {
    switch (value->kind()) {
      case Value::Kind::kConstant: {
        const auto* constant = static_cast<const Constant*>(value);
        if (constant->type() == Type::kI1) return constant->value() != 0 ? "true" : "false";
        const auto raw = constant->value();
        if (raw > 0xFFFF) return support::hex_string(raw);
        return std::to_string(raw);
      }
      case Value::Kind::kGlobal:
        return "@" + static_cast<const GlobalVariable*>(value)->name();
      case Value::Kind::kInstr: {
        const auto it = ids_.find(static_cast<const Instr*>(value));
        return it == ids_.end() ? "%<void>" : "%" + std::to_string(it->second);
      }
    }
    return "?";
  }

  std::string typed_ref(const Value* value) const {
    return std::string(to_string(value->type())) + " " + value_ref(value);
  }

  std::string instr_line(const Instr& instr) const {
    std::string out = "  ";
    if (instr.type() != Type::kVoid) out += value_ref(&instr) + " = ";
    switch (instr.opcode()) {
      case Opcode::kICmp:
        out += "icmp " + std::string(to_string(instr.pred)) + " " +
               typed_ref(instr.operands[0]) + ", " + value_ref(instr.operands[1]);
        return out;
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kTrunc:
        out += std::string(to_string(instr.opcode())) + " " +
               typed_ref(instr.operands[0]) + " to " + std::string(to_string(instr.type()));
        return out;
      case Opcode::kLoad:
        out += "load " + std::string(to_string(instr.type())) + ", " +
               typed_ref(instr.operands[0]);
        return out;
      case Opcode::kStore:
        out += "store " + typed_ref(instr.operands[0]) + ", " +
               typed_ref(instr.operands[1]);
        return out;
      case Opcode::kBr:
        out += "br label %" + instr.targets[0]->name();
        return out;
      case Opcode::kCondBr:
        out += "br " + typed_ref(instr.operands[0]) + ", label %" +
               instr.targets[0]->name() + ", label %" + instr.targets[1]->name();
        return out;
      case Opcode::kSwitch: {
        out += "switch " + typed_ref(instr.operands[0]) + ", label %" +
               instr.targets[0]->name() + " [";
        for (std::size_t i = 0; i < instr.case_values.size(); ++i) {
          if (i != 0) out += " ";
          out += std::to_string(instr.case_values[i]) + ": label %" +
                 instr.targets[i + 1]->name();
        }
        out += "]";
        return out;
      }
      case Opcode::kRet:
        out += "ret void";
        return out;
      case Opcode::kUnreachable:
        out += "unreachable";
        return out;
      case Opcode::kCall: {
        out += "call " + std::string(to_string(instr.callee->return_type())) + " @" +
               instr.callee->name() + "(";
        for (std::size_t i = 0; i < instr.operands.size(); ++i) {
          if (i != 0) out += ", ";
          out += typed_ref(instr.operands[i]);
        }
        out += ")";
        return out;
      }
      default:
        out += std::string(to_string(instr.opcode())) + " " +
               typed_ref(instr.operands[0]);
        for (std::size_t i = 1; i < instr.operands.size(); ++i) {
          out += ", " + value_ref(instr.operands[i]);
        }
        return out;
    }
  }

 private:
  const Function& fn_;
  std::map<const Instr*, int> ids_;
};

}  // namespace

std::string print(const Function& fn) {
  if (fn.is_intrinsic()) {
    return "declare " + std::string(to_string(fn.return_type())) + " @" + fn.name() +
           "(" + std::to_string(fn.param_count()) + " args)\n";
  }
  FnPrinter printer(fn);
  std::string out =
      "define " + std::string(to_string(fn.return_type())) + " @" + fn.name() + "() {\n";
  for (const auto& block : fn.blocks) {
    out += block->name() + ":\n";
    for (const auto& instr : block->instrs) out += printer.instr_line(*instr) + "\n";
  }
  out += "}\n";
  return out;
}

std::string print(const Module& module) {
  std::string out;
  for (const auto& global : module.globals) {
    out += "@" + global->name() + " = global [" + std::to_string(global->size()) +
           " x i8]\n";
  }
  if (!module.globals.empty()) out += "\n";
  for (const auto& fn : module.functions) {
    out += print(*fn) + "\n";
  }
  return out;
}

}  // namespace r2r::ir
