// r2r::ir — LLVM-flavoured textual rendering (diagnostics, docs, tests).
#pragma once

#include <string>

#include "ir/ir.h"

namespace r2r::ir {

std::string print(const Module& module);
std::string print(const Function& fn);

}  // namespace r2r::ir
