// r2r::ir — insertion-point based IR construction (LLVM IRBuilder style).
#pragma once

#include "ir/ir.h"

namespace r2r::ir {

class Builder {
 public:
  explicit Builder(Module& module) : module_(module) {}

  void set_insert_point(BasicBlock* block) noexcept { block_ = block; }
  [[nodiscard]] BasicBlock* insert_point() const noexcept { return block_; }
  [[nodiscard]] Module& module() noexcept { return module_; }

  Constant* const_i64(std::uint64_t value) {
    return module_.get_constant(Type::kI64, value);
  }
  Constant* const_i8(std::uint8_t value) { return module_.get_constant(Type::kI8, value); }
  Constant* const_i1(bool value) { return module_.get_constant(Type::kI1, value ? 1 : 0); }

  Instr* binary(Opcode opcode, Value* a, Value* b) {
    support::require(a->type() == b->type(), "binary operand type mismatch");
    Instr* instr = append(opcode, a->type());
    instr->operands = {a, b};
    return instr;
  }
  Instr* add(Value* a, Value* b) { return binary(Opcode::kAdd, a, b); }
  Instr* sub(Value* a, Value* b) { return binary(Opcode::kSub, a, b); }
  Instr* mul(Value* a, Value* b) { return binary(Opcode::kMul, a, b); }
  Instr* and_(Value* a, Value* b) { return binary(Opcode::kAnd, a, b); }
  Instr* or_(Value* a, Value* b) { return binary(Opcode::kOr, a, b); }
  Instr* xor_(Value* a, Value* b) { return binary(Opcode::kXor, a, b); }
  Instr* shl(Value* a, Value* b) { return binary(Opcode::kShl, a, b); }
  Instr* lshr(Value* a, Value* b) { return binary(Opcode::kLShr, a, b); }
  Instr* ashr(Value* a, Value* b) { return binary(Opcode::kAShr, a, b); }

  /// Bitwise complement as xor with all-ones (Algorithm 1's ¬mask).
  Instr* not_(Value* a) {
    return xor_(a, module_.get_constant(a->type(), ~std::uint64_t{0}));
  }

  Instr* icmp(Pred pred, Value* a, Value* b) {
    support::require(a->type() == b->type(), "icmp operand type mismatch");
    Instr* instr = append(Opcode::kICmp, Type::kI1);
    instr->operands = {a, b};
    instr->pred = pred;
    return instr;
  }

  Instr* zext(Value* value, Type to) {
    Instr* instr = append(Opcode::kZExt, to);
    instr->operands = {value};
    return instr;
  }
  Instr* sext(Value* value, Type to) {
    Instr* instr = append(Opcode::kSExt, to);
    instr->operands = {value};
    return instr;
  }
  Instr* trunc(Value* value, Type to) {
    Instr* instr = append(Opcode::kTrunc, to);
    instr->operands = {value};
    return instr;
  }
  Instr* select(Value* cond, Value* if_true, Value* if_false) {
    support::require(if_true->type() == if_false->type(), "select type mismatch");
    Instr* instr = append(Opcode::kSelect, if_true->type());
    instr->operands = {cond, if_true, if_false};
    return instr;
  }

  Instr* load(Type type, Value* address) {
    Instr* instr = append(Opcode::kLoad, type);
    instr->operands = {address};
    return instr;
  }
  Instr* store(Value* value, Value* address) {
    Instr* instr = append(Opcode::kStore, Type::kVoid);
    instr->operands = {value, address};
    return instr;
  }

  Instr* br(BasicBlock* target) {
    Instr* instr = append(Opcode::kBr, Type::kVoid);
    instr->targets = {target};
    return instr;
  }
  Instr* cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
    Instr* instr = append(Opcode::kCondBr, Type::kVoid);
    instr->operands = {cond};
    instr->targets = {if_true, if_false};
    return instr;
  }
  Instr* switch_(Value* value, BasicBlock* default_target,
                 std::vector<std::pair<std::uint64_t, BasicBlock*>> cases) {
    Instr* instr = append(Opcode::kSwitch, Type::kVoid);
    instr->operands = {value};
    instr->targets = {default_target};
    for (auto& [case_value, target] : cases) {
      instr->case_values.push_back(case_value);
      instr->targets.push_back(target);
    }
    return instr;
  }
  Instr* ret() { return append(Opcode::kRet, Type::kVoid); }
  Instr* unreachable() { return append(Opcode::kUnreachable, Type::kVoid); }

  Instr* call(Function* callee, std::vector<Value*> args = {}) {
    Instr* instr = append(Opcode::kCall, callee->return_type());
    instr->callee = callee;
    instr->operands = std::move(args);
    return instr;
  }

  /// Re-emits a side-effect-free computation with the same operands
  /// (used by redundancy passes to duplicate work at run time).
  Instr* binary_clone(const Instr* original) {
    switch (original->opcode()) {
      case Opcode::kLoad:
        return load(original->type(), original->operands[0]);
      case Opcode::kICmp:
        return icmp(original->pred, original->operands[0], original->operands[1]);
      case Opcode::kZExt:
        return zext(original->operands[0], original->type());
      case Opcode::kSExt:
        return sext(original->operands[0], original->type());
      case Opcode::kTrunc:
        return trunc(original->operands[0], original->type());
      case Opcode::kSelect:
        return select(original->operands[0], original->operands[1],
                      original->operands[2]);
      default:
        return binary(original->opcode(), original->operands[0], original->operands[1]);
    }
  }

 private:
  Instr* append(Opcode opcode, Type type) {
    support::require(block_ != nullptr, "builder has no insertion point");
    block_->instrs.push_back(std::make_unique<Instr>(opcode, type));
    return block_->instrs.back().get();
  }

  Module& module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace r2r::ir
