#include "ir/ir.h"

namespace r2r::ir {

std::string_view to_string(Type type) noexcept {
  switch (type) {
    case Type::kVoid: return "void";
    case Type::kI1: return "i1";
    case Type::kI8: return "i8";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
  }
  return "?";
}

unsigned type_bits(Type type) noexcept {
  switch (type) {
    case Type::kVoid: return 0;
    case Type::kI1: return 1;
    case Type::kI8: return 8;
    case Type::kI32: return 32;
    case Type::kI64: return 64;
  }
  return 0;
}

std::string_view to_string(Opcode opcode) noexcept {
  switch (opcode) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kLShr: return "lshr";
    case Opcode::kAShr: return "ashr";
    case Opcode::kICmp: return "icmp";
    case Opcode::kZExt: return "zext";
    case Opcode::kSExt: return "sext";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kSelect: return "select";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "br";
    case Opcode::kSwitch: return "switch";
    case Opcode::kRet: return "ret";
    case Opcode::kUnreachable: return "unreachable";
    case Opcode::kCall: return "call";
  }
  return "?";
}

std::string_view to_string(Pred pred) noexcept {
  switch (pred) {
    case Pred::kEq: return "eq";
    case Pred::kNe: return "ne";
    case Pred::kUlt: return "ult";
    case Pred::kUle: return "ule";
    case Pred::kUgt: return "ugt";
    case Pred::kUge: return "uge";
    case Pred::kSlt: return "slt";
    case Pred::kSle: return "sle";
    case Pred::kSgt: return "sgt";
    case Pred::kSge: return "sge";
  }
  return "?";
}

Constant* Module::get_constant(Type type, std::uint64_t value) {
  // Normalize the stored payload to the type's width so interning works.
  const unsigned bits = type_bits(type);
  if (bits != 0 && bits < 64) value &= (std::uint64_t{1} << bits) - 1;
  for (const auto& constant : constants_) {
    if (constant->type() == type && constant->value() == value) return constant.get();
  }
  constants_.push_back(std::make_unique<Constant>(type, value));
  return constants_.back().get();
}

Function* Module::get_intrinsic(std::string_view name, Type return_type,
                                unsigned params) {
  if (Function* existing = find_function(name)) return existing;
  return add_function(std::string(name), return_type, params, /*is_intrinsic=*/true);
}

}  // namespace r2r::ir
