#include "elf/image.h"

namespace r2r::elf {

const Segment* Image::find_segment(std::string_view name) const noexcept {
  for (const auto& segment : segments) {
    if (segment.name == name) return &segment;
  }
  return nullptr;
}

Segment* Image::find_segment(std::string_view name) noexcept {
  for (auto& segment : segments) {
    if (segment.name == name) return &segment;
  }
  return nullptr;
}

const Segment* Image::segment_containing(std::uint64_t address) const noexcept {
  for (const auto& segment : segments) {
    if (segment.contains(address)) return &segment;
  }
  return nullptr;
}

const Symbol* Image::find_symbol(std::string_view name) const noexcept {
  for (const auto& symbol : symbols) {
    if (symbol.name == name) return &symbol;
  }
  return nullptr;
}

const Symbol* Image::symbol_at(std::uint64_t address) const noexcept {
  for (const auto& symbol : symbols) {
    if (symbol.is_code && symbol.value == address) return &symbol;
  }
  return nullptr;
}

std::uint64_t Image::code_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& segment : segments) {
    if ((segment.flags & kExecute) != 0) total += segment.data.size();
  }
  return total;
}

}  // namespace r2r::elf
