// ELF64 reader for the feature subset write_elf() emits.
#include "elf/image.h"
#include "support/bytes.h"
#include "support/error.h"

namespace r2r::elf {

namespace {

using support::ByteReader;
using support::check;
using support::ErrorKind;

std::string read_cstring(std::span<const std::uint8_t> table, std::uint64_t offset) {
  std::string out;
  while (offset < table.size() && table[offset] != 0) {
    out.push_back(static_cast<char>(table[offset]));
    ++offset;
  }
  return out;
}

}  // namespace

Image read_elf(std::span<const std::uint8_t> bytes) {
  check(bytes.size() >= 64, ErrorKind::kElf, "file shorter than ELF header");
  ByteReader reader(bytes);
  check(reader.read_u8() == 0x7F && reader.read_u8() == 'E' && reader.read_u8() == 'L' &&
            reader.read_u8() == 'F',
        ErrorKind::kElf, "bad ELF magic");
  check(reader.read_u8() == 2, ErrorKind::kElf, "not ELFCLASS64");
  check(reader.read_u8() == 1, ErrorKind::kElf, "not little-endian");
  reader.seek(16);
  const std::uint16_t type = reader.read_u16();
  check(type == 2, ErrorKind::kElf, "not ET_EXEC");
  const std::uint16_t machine = reader.read_u16();
  check(machine == 62 || machine == 243, ErrorKind::kElf,
        "unsupported e_machine (want EM_X86_64 or EM_RISCV)");
  reader.read_u32();  // version
  Image image;
  image.machine = machine;
  image.entry = reader.read_u64();
  const std::uint64_t phoff = reader.read_u64();
  const std::uint64_t shoff = reader.read_u64();
  reader.read_u32();  // flags
  reader.read_u16();  // ehsize
  const std::uint16_t phentsize = reader.read_u16();
  const std::uint16_t phnum = reader.read_u16();
  const std::uint16_t shentsize = reader.read_u16();
  const std::uint16_t shnum = reader.read_u16();
  const std::uint16_t shstrndx = reader.read_u16();
  check(phentsize == 56 && (shnum == 0 || shentsize == 64), ErrorKind::kElf,
        "unexpected header entry sizes");

  struct RawPhdr {
    std::uint32_t flags;
    std::uint64_t offset, vaddr, filesz, memsz;
  };
  std::vector<RawPhdr> phdrs;
  for (std::uint16_t i = 0; i < phnum; ++i) {
    reader.seek(phoff + static_cast<std::uint64_t>(i) * phentsize);
    const std::uint32_t p_type = reader.read_u32();
    const std::uint32_t p_flags = reader.read_u32();
    const std::uint64_t p_offset = reader.read_u64();
    const std::uint64_t p_vaddr = reader.read_u64();
    reader.read_u64();  // p_paddr
    const std::uint64_t p_filesz = reader.read_u64();
    const std::uint64_t p_memsz = reader.read_u64();
    if (p_type != 1) continue;  // only PT_LOAD
    phdrs.push_back({p_flags, p_offset, p_vaddr, p_filesz, p_memsz});
  }

  struct RawShdr {
    std::uint32_t name, type, link;
    std::uint64_t flags, addr, offset, size, entsize;
    std::uint32_t info;
  };
  std::vector<RawShdr> shdrs;
  for (std::uint16_t i = 0; i < shnum; ++i) {
    reader.seek(shoff + static_cast<std::uint64_t>(i) * shentsize);
    RawShdr sh{};
    sh.name = reader.read_u32();
    sh.type = reader.read_u32();
    sh.flags = reader.read_u64();
    sh.addr = reader.read_u64();
    sh.offset = reader.read_u64();
    sh.size = reader.read_u64();
    sh.link = reader.read_u32();
    sh.info = reader.read_u32();
    reader.read_u64();  // addralign
    sh.entsize = reader.read_u64();
    shdrs.push_back(sh);
  }

  std::span<const std::uint8_t> shstrtab;
  if (shstrndx < shdrs.size()) {
    const RawShdr& sh = shdrs[shstrndx];
    check(sh.offset + sh.size <= bytes.size(), ErrorKind::kElf, "shstrtab out of range");
    shstrtab = bytes.subspan(sh.offset, sh.size);
  }

  for (const RawPhdr& ph : phdrs) {
    check(ph.offset + ph.filesz <= bytes.size(), ErrorKind::kElf, "segment out of range");
    Segment segment;
    segment.vaddr = ph.vaddr;
    segment.flags = ph.flags;
    segment.mem_size = ph.memsz;
    segment.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(ph.offset),
                        bytes.begin() + static_cast<std::ptrdiff_t>(ph.offset + ph.filesz));
    // Name the segment from a matching allocatable section, if any.
    for (const RawShdr& sh : shdrs) {
      if (sh.type == 1 && sh.addr == ph.vaddr && !shstrtab.empty()) {
        segment.name = read_cstring(shstrtab, sh.name);
        break;
      }
    }
    if (segment.name.empty()) {
      segment.name = (ph.flags & kExecute) != 0 ? ".text" : ".data";
    }
    image.segments.push_back(std::move(segment));
  }

  // Symbols.
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    const RawShdr& sh = shdrs[i];
    if (sh.type != 2) continue;  // SHT_SYMTAB
    check(sh.link < shdrs.size(), ErrorKind::kElf, "symtab strtab link out of range");
    const RawShdr& str = shdrs[sh.link];
    check(str.offset + str.size <= bytes.size(), ErrorKind::kElf, "strtab out of range");
    const auto strtab = bytes.subspan(str.offset, str.size);
    check(sh.entsize == 24, ErrorKind::kElf, "unexpected symbol entry size");
    const std::size_t count = sh.size / 24;
    for (std::size_t s = 1; s < count; ++s) {  // skip null symbol
      reader.seek(sh.offset + s * 24);
      const std::uint32_t name_offset = reader.read_u32();
      const std::uint8_t info = reader.read_u8();
      reader.read_u8();
      reader.read_u16();
      const std::uint64_t value = reader.read_u64();
      Symbol symbol;
      symbol.name = read_cstring(strtab, name_offset);
      symbol.value = value;
      symbol.global = (info >> 4) == 1;
      symbol.is_code = (info & 0xF) == 2;
      image.symbols.push_back(std::move(symbol));
    }
  }

  return image;
}

}  // namespace r2r::elf
