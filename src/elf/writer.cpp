// ELF64 writer: ehdr + one PT_LOAD phdr per segment + raw segment data +
// section headers (one per segment, plus .symtab/.strtab/.shstrtab).
#include "elf/image.h"
#include "support/bytes.h"
#include "support/error.h"

namespace r2r::elf {

namespace {

using support::ByteBuffer;

constexpr std::uint64_t kPageSize = 0x1000;
constexpr std::uint16_t kEtExec = 2;
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint32_t kShtProgbits = 1;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtStrtab = 3;
constexpr std::uint64_t kShfAlloc = 2;
constexpr std::uint64_t kShfExecinstr = 4;
constexpr std::uint64_t kShfWrite = 1;

constexpr std::size_t kEhdrSize = 64;
constexpr std::size_t kPhdrSize = 56;
constexpr std::size_t kShdrSize = 64;
constexpr std::size_t kSymSize = 24;

/// Accumulates NUL-separated strings and hands out offsets.
class StringTable {
 public:
  StringTable() { bytes_.push_back(0); }
  std::uint32_t add(const std::string& text) {
    const auto offset = static_cast<std::uint32_t>(bytes_.size());
    for (char c : text) bytes_.push_back(static_cast<std::uint8_t>(c));
    bytes_.push_back(0);
    return offset;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace

std::vector<std::uint8_t> write_elf(const Image& image) {
  const std::size_t segment_count = image.segments.size();
  const std::size_t phdr_bytes = segment_count * kPhdrSize;

  // File layout: ehdr, phdrs, [segments page-aligned], symtab, strtab,
  // shstrtab, shdrs.
  std::vector<std::uint64_t> file_offsets(segment_count);
  std::uint64_t cursor = kEhdrSize + phdr_bytes;
  for (std::size_t i = 0; i < segment_count; ++i) {
    const Segment& segment = image.segments[i];
    // Loaders require p_offset ≡ p_vaddr (mod page size).
    const std::uint64_t target_mod = segment.vaddr % kPageSize;
    while (cursor % kPageSize != target_mod) ++cursor;
    file_offsets[i] = cursor;
    cursor += segment.data.size();
  }

  StringTable strtab;
  ByteBuffer symtab;
  // Null symbol.
  for (std::size_t i = 0; i < kSymSize; ++i) symtab.append_u8(0);
  std::size_t local_count = 1;
  // Locals must precede globals in .symtab.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Symbol& symbol : image.symbols) {
      if (symbol.global != (pass == 1)) continue;
      if (pass == 0) ++local_count;
      symtab.append_u32(strtab.add(symbol.name));                   // st_name
      const std::uint8_t bind = symbol.global ? 1 : 0;
      const std::uint8_t type = symbol.is_code ? 2 : 1;             // FUNC : OBJECT
      symtab.append_u8(static_cast<std::uint8_t>((bind << 4) | type));  // st_info
      symtab.append_u8(0);                                          // st_other
      symtab.append_u16(0);                                         // st_shndx
      symtab.append_u64(symbol.value);                              // st_value
      symtab.append_u64(0);                                         // st_size
    }
  }

  StringTable shstrtab;
  struct SectionHeader {
    std::uint32_t name_offset;
    std::uint32_t type;
    std::uint64_t flags;
    std::uint64_t addr;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t link;
    std::uint32_t info;
    std::uint64_t addralign;
    std::uint64_t entsize;
  };
  std::vector<SectionHeader> shdrs;
  shdrs.push_back({});  // SHN_UNDEF

  for (std::size_t i = 0; i < segment_count; ++i) {
    const Segment& segment = image.segments[i];
    std::uint64_t flags = kShfAlloc;
    if ((segment.flags & kExecute) != 0) flags |= kShfExecinstr;
    if ((segment.flags & kWrite) != 0) flags |= kShfWrite;
    shdrs.push_back({shstrtab.add(segment.name), kShtProgbits, flags, segment.vaddr,
                     file_offsets[i], segment.data.size(), 0, 0, 16, 0});
  }

  const std::uint64_t symtab_offset = cursor;
  cursor += symtab.size();
  const std::uint64_t strtab_offset = cursor;
  cursor += strtab.bytes().size();

  const std::uint32_t strtab_index = static_cast<std::uint32_t>(shdrs.size() + 1);
  shdrs.push_back({shstrtab.add(".symtab"), kShtSymtab, 0, 0, symtab_offset,
                   symtab.size(), strtab_index, static_cast<std::uint32_t>(local_count),
                   8, kSymSize});
  shdrs.push_back({shstrtab.add(".strtab"), kShtStrtab, 0, 0, strtab_offset,
                   strtab.bytes().size(), 0, 0, 1, 0});
  const std::uint32_t shstrtab_name = shstrtab.add(".shstrtab");
  const std::uint64_t shstrtab_offset = cursor;
  cursor += shstrtab.bytes().size();
  shdrs.push_back({shstrtab_name, kShtStrtab, 0, 0, shstrtab_offset,
                   shstrtab.bytes().size(), 0, 0, 1, 0});

  const std::uint64_t shdr_offset = (cursor + 7) & ~std::uint64_t{7};

  ByteBuffer out;
  // --- ELF header ---
  out.append_u8(0x7F);
  out.append_u8('E');
  out.append_u8('L');
  out.append_u8('F');
  out.append_u8(2);  // ELFCLASS64
  out.append_u8(1);  // ELFDATA2LSB
  out.append_u8(1);  // EV_CURRENT
  for (int i = 0; i < 9; ++i) out.append_u8(0);
  out.append_u16(kEtExec);
  out.append_u16(image.machine);
  out.append_u32(1);                                       // e_version
  out.append_u64(image.entry);                             // e_entry
  out.append_u64(kEhdrSize);                               // e_phoff
  out.append_u64(shdr_offset);                             // e_shoff
  out.append_u32(0);                                       // e_flags
  out.append_u16(kEhdrSize);                               // e_ehsize
  out.append_u16(kPhdrSize);                               // e_phentsize
  out.append_u16(static_cast<std::uint16_t>(segment_count));  // e_phnum
  out.append_u16(kShdrSize);                               // e_shentsize
  out.append_u16(static_cast<std::uint16_t>(shdrs.size()));   // e_shnum
  out.append_u16(static_cast<std::uint16_t>(shdrs.size() - 1));  // e_shstrndx

  // --- program headers ---
  for (std::size_t i = 0; i < segment_count; ++i) {
    const Segment& segment = image.segments[i];
    out.append_u32(kPtLoad);
    out.append_u32(segment.flags);
    out.append_u64(file_offsets[i]);
    out.append_u64(segment.vaddr);  // p_vaddr
    out.append_u64(segment.vaddr);  // p_paddr
    out.append_u64(segment.data.size());
    out.append_u64(segment.size_in_memory());
    out.append_u64(kPageSize);
  }

  // --- segment data ---
  for (std::size_t i = 0; i < segment_count; ++i) {
    while (out.size() < file_offsets[i]) out.append_u8(0);
    out.append_bytes(image.segments[i].data);
  }

  // --- symtab / strtab / shstrtab ---
  while (out.size() < symtab_offset) out.append_u8(0);
  out.append_bytes(symtab.span());
  out.append_bytes(strtab.bytes());
  out.append_bytes(shstrtab.bytes());

  // --- section headers ---
  while (out.size() < shdr_offset) out.append_u8(0);
  for (const auto& sh : shdrs) {
    out.append_u32(sh.name_offset);
    out.append_u32(sh.type);
    out.append_u64(sh.flags);
    out.append_u64(sh.addr);
    out.append_u64(sh.offset);
    out.append_u64(sh.size);
    out.append_u32(sh.link);
    out.append_u32(sh.info);
    out.append_u64(sh.addralign);
    out.append_u64(sh.entsize);
  }

  return std::move(out).take();
}

}  // namespace r2r::elf
