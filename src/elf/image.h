// r2r::elf — in-memory model of a minimal ELF64 executable.
//
// An Image is the interchange format between the assembler/reassembler
// (which produce images), the emulator loader (which maps them), and the
// recovery layer (which disassembles them). Each Segment doubles as a
// section: the writer emits one PT_LOAD program header and one section
// header per entry, so tools and the reader can rely on names.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace r2r::elf {

/// Segment permission bits (match ELF p_flags).
enum SegmentFlags : std::uint32_t {
  kExecute = 1,
  kWrite = 2,
  kRead = 4,
};

struct Segment {
  std::string name;            ///< section-style name: ".text", ".data", ...
  std::uint64_t vaddr = 0;
  std::uint32_t flags = kRead;
  std::vector<std::uint8_t> data;
  std::uint64_t mem_size = 0;  ///< >= data.size(); excess is zero-filled (bss)

  [[nodiscard]] std::uint64_t size_in_memory() const noexcept {
    return mem_size > data.size() ? mem_size : data.size();
  }
  [[nodiscard]] bool contains(std::uint64_t address) const noexcept {
    return address >= vaddr && address < vaddr + size_in_memory();
  }
};

struct Symbol {
  std::string name;
  std::uint64_t value = 0;
  bool global = false;
  bool is_code = false;
};

struct Image {
  std::uint64_t entry = 0;
  /// ELF e_machine of the code in this image (62 = EM_X86_64, the default;
  /// 243 = EM_RISCV). isa::arch_from_elf_machine maps it to a Target — the
  /// elf layer itself stays ISA-agnostic.
  std::uint16_t machine = 62;
  std::vector<Segment> segments;
  std::vector<Symbol> symbols;

  [[nodiscard]] const Segment* find_segment(std::string_view name) const noexcept;
  [[nodiscard]] Segment* find_segment(std::string_view name) noexcept;
  [[nodiscard]] const Segment* segment_containing(std::uint64_t address) const noexcept;
  [[nodiscard]] const Symbol* find_symbol(std::string_view name) const noexcept;
  /// Name of the code symbol at exactly `address`, if any.
  [[nodiscard]] const Symbol* symbol_at(std::uint64_t address) const noexcept;
  /// Total bytes of executable segments — the paper's "code size" metric.
  [[nodiscard]] std::uint64_t code_size() const noexcept;
};

/// Serializes to a valid ELF64 executable byte stream.
std::vector<std::uint8_t> write_elf(const Image& image);

/// Parses an ELF produced by write_elf (or any static ELF64 using the same
/// subset of features). Throws Error{kElf} on malformed input.
Image read_elf(std::span<const std::uint8_t> bytes);

}  // namespace r2r::elf
