#include "guests/synth.h"

#include <string_view>
#include <vector>

#include "support/rng.h"
#include "support/strings.h"

namespace r2r::guests::synth {

namespace {

constexpr std::string_view kCharset = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

char draw_char(support::Rng& rng) {
  return kCharset[static_cast<std::size_t>(rng.next_below(kCharset.size()))];
}

std::string draw_token(support::Rng& rng, std::size_t length) {
  std::string token;
  token.reserve(length);
  for (std::size_t i = 0; i < length; ++i) token.push_back(draw_char(rng));
  return token;
}

/// 31-bit positive immediate (always encodable as imm32, never sign-trouble).
std::uint64_t draw_imm(support::Rng& rng) { return (rng.next() & 0x7FFFFFFFULL) | 1; }

/// The guest-side digest loop mirrored host-side: h = (h ^ byte) * prime,
/// 64-bit wrapping — identical to the emulated xor+imul sequence.
std::uint64_t synth_digest(std::string_view data, std::uint64_t basis,
                           std::uint64_t prime) {
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= prime;
  }
  return hash;
}

std::string write_msg(const std::string& symbol, std::size_t length) {
  return "    mov rax, 1\n"
         "    mov rdi, 1\n"
         "    mov rsi, offset " + symbol + "\n"
         "    mov rdx, " + std::to_string(length) + "\n"
         "    syscall\n";
}

std::string exit_with(int code) {
  return "    mov rax, 60\n"
         "    mov rdi, " + std::to_string(code) + "\n"
         "    syscall\n";
}

DecisionKind pick_decision(support::Rng& rng, const SynthConfig& config) {
  std::vector<DecisionKind> palette;
  if (config.allow_byte_compare) palette.push_back(DecisionKind::kByteCompare);
  if (config.allow_digest) palette.push_back(DecisionKind::kDigestCompare);
  if (config.allow_multistage) palette.push_back(DecisionKind::kMultiStageGuard);
  if (palette.empty()) palette.push_back(DecisionKind::kByteCompare);
  return palette[static_cast<std::size_t>(rng.next_below(palette.size()))];
}

bool chance(support::Rng& rng, unsigned percent) {
  return rng.next_below(100) < percent;
}

/// Flag-neutral filler instructions (mov/movzx only) inserted between a
/// decision `cmp` and its `jcc` — the Table II/III "compare far from the
/// branch" shape. `allow_loads` admits memory-reading fillers; keep it off
/// inside loops whose registers must survive.
std::string draw_gap_fillers(support::Rng& rng, unsigned max_gap, bool allow_loads) {
  std::string out;
  const std::uint64_t count = max_gap == 0 ? 0 : rng.next_below(max_gap + 1);
  for (std::uint64_t i = 0; i < count; ++i) {
    switch (rng.next_below(allow_loads ? 3 : 2)) {
      case 0:
        out += "    mov rbx, " + std::to_string(draw_imm(rng)) + "\n";
        break;
      case 1:
        out += "    mov rdx, " + std::to_string(draw_imm(rng)) + "\n";
        break;
      default:
        out += "    mov rsi, offset inbuf\n"
               "    movzx rbx, byte ptr [rsi]\n";
        break;
    }
  }
  return out;
}

/// One noise helper of the call tree: scratch arithmetic, an optional
/// two-arm branch, an optional loop with a data-dependent trip count
/// (1..8, derived from an input byte), an optional call deeper into the
/// tree, all seed-chosen.
struct NoiseHelper {
  std::string body;
  bool calls_next = false;
};

NoiseHelper make_noise_helper(support::Rng& rng, const SynthConfig& config,
                              unsigned index, unsigned helper_count,
                              unsigned key_len) {
  NoiseHelper helper;
  const std::string name = "noise_" + std::to_string(index);
  const std::string slot = index == 0 ? std::string("[rbx]")
                                      : "[rbx+" + std::to_string(8 * index) + "]";
  std::string body;
  body += name + ":\n";
  body += "    mov rbx, offset scratch\n";
  body += "    mov rax, " + slot + "\n";
  body += "    add rax, " + std::to_string(draw_imm(rng)) + "\n";
  body += "    xor rax, " + std::to_string(draw_imm(rng)) + "\n";

  if (chance(rng, config.branch_density_percent)) {
    static constexpr std::string_view kCc[] = {"jb", "ja", "jne", "je"};
    const std::string_view cc = kCc[rng.next_below(4)];
    body += "    cmp rax, " + std::to_string(draw_imm(rng)) + "\n";
    body += "    " + std::string(cc) + " n" + std::to_string(index) + "_else\n";
    body += "    add rax, " + std::to_string(draw_imm(rng)) + "\n";
    body += "    jmp n" + std::to_string(index) + "_join\n";
    body += "n" + std::to_string(index) + "_else:\n";
    body += "    xor rax, " + std::to_string(draw_imm(rng)) + "\n";
    body += "n" + std::to_string(index) + "_join:\n";
  }

  if (chance(rng, config.loop_chance_percent)) {
    const std::uint64_t byte_index = rng.next_below(key_len);
    body += "    mov rsi, offset inbuf\n";
    body += "    movzx rcx, byte ptr [rsi+" + std::to_string(byte_index) + "]\n";
    body += "    and rcx, 7\n";
    body += "    inc rcx\n";
    body += "n" + std::to_string(index) + "_loop:\n";
    body += "    add rax, " + std::to_string(draw_imm(rng)) + "\n";
    if (config.mov_store_opportunities) body += "    mov " + slot + ", rax\n";
    body += "    dec rcx\n";
    body += "    cmp rcx, 0\n";
    body += "    jne n" + std::to_string(index) + "_loop\n";
  }

  body += "    mov " + slot + ", rax\n";
  if (index + 1 < helper_count && chance(rng, 50)) {
    helper.calls_next = true;
    body += "    call noise_" + std::to_string(index + 1) + "\n";
  }
  body += "    ret\n";
  helper.body = std::move(body);
  return helper;
}

/// Accumulate-difference byte compare (pincheck's cp_loop shape): xor every
/// input byte against the expected key, OR the differences, one verdict cmp.
std::string byte_compare_accumulate(support::Rng& rng, const SynthConfig& config,
                                    const std::string& label, unsigned offset,
                                    unsigned length) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov rsi, offset inbuf\n";
  if (offset != 0) body += "    add rsi, " + std::to_string(offset) + "\n";
  body += "    mov rdi, offset expected_key\n";
  if (offset != 0) body += "    add rdi, " + std::to_string(offset) + "\n";
  body += "    mov rcx, " + std::to_string(length) + "\n";
  body += "    xor rax, rax\n";
  body += p + "_loop:\n";
  body += "    movzx rbx, byte ptr [rsi]\n";
  body += "    movzx rdx, byte ptr [rdi]\n";
  body += "    xor rbx, rdx\n";
  body += "    or rax, rbx\n";
  body += "    inc rsi\n";
  body += "    inc rdi\n";
  body += "    dec rcx\n";
  body += "    cmp rcx, 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    cmp rax, 0\n";
  body += draw_gap_fillers(rng, config.max_cmp_jcc_gap, /*allow_loads=*/true);
  body += "    jne " + p + "_fail\n";
  body += "    mov rax, 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor rax, rax\n";
  body += "    ret\n";
  return body;
}

/// Early-exit byte compare (the bootloader's vm_loop shape): bail at the
/// first mismatching byte. The per-byte cmp/jcc pair may be separated by
/// immediate-only fillers.
std::string byte_compare_early_exit(support::Rng& rng, const SynthConfig& config,
                                    const std::string& label, unsigned offset,
                                    unsigned length) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov rsi, offset inbuf\n";
  if (offset != 0) body += "    add rsi, " + std::to_string(offset) + "\n";
  body += "    mov rdi, offset expected_key\n";
  if (offset != 0) body += "    add rdi, " + std::to_string(offset) + "\n";
  body += "    mov rcx, " + std::to_string(length) + "\n";
  body += p + "_loop:\n";
  body += "    movzx rbx, byte ptr [rsi]\n";
  body += "    movzx rdx, byte ptr [rdi]\n";
  body += "    cmp rbx, rdx\n";
  body += draw_gap_fillers(rng, config.max_cmp_jcc_gap, /*allow_loads=*/false);
  body += "    jne " + p + "_fail\n";
  body += "    inc rsi\n";
  body += "    inc rdi\n";
  body += "    dec rcx\n";
  body += "    cmp rcx, 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    mov rax, 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor rax, rax\n";
  body += "    ret\n";
  return body;
}

/// Digest compare (the bootloader's compute_hash shape): seeded basis and
/// odd prime, expected value loaded from a data quad.
std::string digest_compare(support::Rng& rng, const SynthConfig& config,
                           const std::string& label, unsigned length,
                           std::uint64_t basis, std::uint64_t prime) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov rsi, offset inbuf\n";
  body += "    mov rcx, " + std::to_string(length) + "\n";
  body += "    mov rax, " + support::hex_string(basis) + "\n";
  body += p + "_loop:\n";
  body += "    movzx rbx, byte ptr [rsi]\n";
  body += "    xor rax, rbx\n";
  body += "    mov rdi, " + support::hex_string(prime) + "\n";
  body += "    imul rax, rdi\n";
  body += "    inc rsi\n";
  body += "    dec rcx\n";
  body += "    cmp rcx, 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    mov rdi, offset expected_digest\n";
  body += "    mov rdi, [rdi]\n";
  body += "    cmp rax, rdi\n";
  body += draw_gap_fillers(rng, config.max_cmp_jcc_gap, /*allow_loads=*/true);
  body += "    jne " + p + "_fail\n";
  body += "    mov rax, 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor rax, rax\n";
  body += "    ret\n";
  return body;
}

}  // namespace

DecisionKind decision_kind(const SynthConfig& config) {
  support::Rng rng(config.seed);
  return pick_decision(rng, config);
}

Guest generate(const SynthConfig& config) {
  support::Rng rng(config.seed);

  // ---- decision, key, inputs (fixed draw order: the determinism contract).
  const DecisionKind kind = pick_decision(rng, config);
  const unsigned min_len = config.min_key_len < 2 ? 2 : config.min_key_len;
  const unsigned max_len = config.max_key_len < min_len ? min_len : config.max_key_len;
  const unsigned key_len =
      min_len + static_cast<unsigned>(rng.next_below(max_len - min_len + 1));

  std::string good_key = draw_token(rng, key_len);

  const bool uses_digest =
      kind == DecisionKind::kDigestCompare || kind == DecisionKind::kMultiStageGuard;
  const std::uint64_t basis = rng.next();
  const std::uint64_t prime = rng.next() | 1;

  // One mutated byte; for digest decisions the digests must also differ
  // (redraw deterministically in the vanishingly unlikely collision case).
  std::string bad_key = good_key;
  while (true) {
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(key_len));
    const char replacement = draw_char(rng);
    if (replacement == good_key[pos]) continue;
    bad_key = good_key;
    bad_key[pos] = replacement;
    if (!uses_digest ||
        synth_digest(good_key, basis, prime) != synth_digest(bad_key, basis, prime)) {
      break;
    }
  }

  // ---- observable contract.
  const std::string banner = "SYNTH SERVICE " + draw_token(rng, 6) + "\n";
  const std::string granted = "ACCESS GRANTED " + draw_token(rng, 4) + "\n";
  const std::string secret = "SECRET " + draw_token(rng, 8) + "\n";
  const std::string denied = "ACCESS DENIED " + draw_token(rng, 4) + "\n";
  const std::string ioerror = "IO ERROR\n";

  Guest guest;
  guest.name = "synth_" + std::to_string(config.seed);
  guest.good_input = good_key;
  guest.bad_input = bad_key;
  guest.good_output = banner + granted + secret;
  guest.bad_output = banner + denied;
  guest.good_exit = 0;
  guest.bad_exit = 1;

  // ---- noise-helper call tree.
  const unsigned helper_count =
      config.max_noise_helpers == 0
          ? 0
          : static_cast<unsigned>(rng.next_below(config.max_noise_helpers + 1));
  std::vector<NoiseHelper> helpers;
  helpers.reserve(helper_count);
  for (unsigned i = 0; i < helper_count; ++i) {
    helpers.push_back(make_noise_helper(rng, config, i, helper_count, key_len));
  }
  // Helpers not reached through a deeper call are rooted in _start, either
  // before the decision or on the privileged continuation.
  std::vector<unsigned> start_calls_pre;
  std::vector<unsigned> start_calls_post;
  for (unsigned i = 0; i < helper_count; ++i) {
    if (i > 0 && helpers[i - 1].calls_next) continue;  // called by helper i-1
    if (chance(rng, 50)) {
      start_calls_pre.push_back(i);
    } else {
      start_calls_post.push_back(i);
    }
  }

  // ---- decision helpers.
  std::string decision_text;
  bool needs_expected_key = false;
  std::string expected_key_bytes = good_key;  // the byte-compare reference
  unsigned stage_count = 1;
  switch (kind) {
    case DecisionKind::kByteCompare:
      needs_expected_key = true;
      decision_text = chance(rng, 50)
                          ? byte_compare_accumulate(rng, config, "check_stage0", 0,
                                                    key_len)
                          : byte_compare_early_exit(rng, config, "check_stage0", 0,
                                                    key_len);
      break;
    case DecisionKind::kDigestCompare:
      decision_text =
          digest_compare(rng, config, "check_stage0", key_len, basis, prime);
      break;
    case DecisionKind::kMultiStageGuard: {
      // Stage 0 guards the key prefix byte-wise, stage 1 digests the whole
      // input — both must pass.
      needs_expected_key = true;
      stage_count = 2;
      const unsigned prefix = (key_len + 1) / 2;
      decision_text =
          byte_compare_early_exit(rng, config, "check_stage0", 0, prefix) + "\n" +
          digest_compare(rng, config, "check_stage1", key_len, basis, prime);
      break;
    }
  }

  // ---- _start.
  std::string text;
  text += ".global _start\n";
  text += ".section .text\n";
  text += "_start:\n";
  text += write_msg("msg_banner", banner.size());
  text += "    mov rax, 0\n";
  text += "    mov rdi, 0\n";
  text += "    mov rsi, offset inbuf\n";
  text += "    mov rdx, " + std::to_string(key_len) + "\n";
  text += "    syscall\n";
  text += "    cmp rax, " + std::to_string(key_len) + "\n";
  text += "    jne io_error\n";
  for (const unsigned i : start_calls_pre) {
    text += "    call noise_" + std::to_string(i) + "\n";
  }
  for (unsigned stage = 0; stage < stage_count; ++stage) {
    text += "    call check_stage" + std::to_string(stage) + "\n";
    text += "    cmp rax, 1\n";
    text += draw_gap_fillers(rng, config.max_cmp_jcc_gap > 2 ? 2 : config.max_cmp_jcc_gap,
                             /*allow_loads=*/false);
    text += "    jne deny\n";
  }
  for (const unsigned i : start_calls_post) {
    text += "    call noise_" + std::to_string(i) + "\n";
  }
  text += "grant:\n";
  text += write_msg("msg_granted", granted.size());
  text += write_msg("msg_secret", secret.size());
  text += exit_with(0);
  text += "deny:\n";
  text += write_msg("msg_denied", denied.size());
  text += exit_with(1);
  text += "io_error:\n";
  text += write_msg("msg_ioerror", ioerror.size());
  text += exit_with(3);
  text += "\n";
  text += decision_text;
  for (const NoiseHelper& helper : helpers) {
    text += "\n" + helper.body;
  }

  // ---- data.
  text += "\n.section .data\n";
  text += "inbuf: .zero " + std::to_string(((key_len + 15) / 16) * 16) + "\n";
  const unsigned scratch_slots = helper_count == 0 ? 1 : helper_count;
  text += "scratch: .quad 0";
  for (unsigned i = 1; i < scratch_slots; ++i) text += ", 0";
  text += "\n";
  if (needs_expected_key) {
    text += "expected_key: .byte ";
    for (std::size_t i = 0; i < expected_key_bytes.size(); ++i) {
      if (i != 0) text += ", ";
      text += std::to_string(static_cast<unsigned>(
          static_cast<unsigned char>(expected_key_bytes[i])));
    }
    text += "\n";
  }
  if (uses_digest) {
    text += "expected_digest: .quad " +
            support::hex_string(synth_digest(good_key, basis, prime)) + "\n";
  }
  const auto emit_msg = [&text](const std::string& symbol, const std::string& message) {
    // Message charset is [A-Z0-9 ] plus the trailing newline — the only
    // byte needing an escape.
    std::string escaped = message;
    escaped.pop_back();
    text += symbol + ": .asciz \"" + escaped + "\\n\"\n";
  };
  emit_msg("msg_banner", banner);
  emit_msg("msg_granted", granted);
  emit_msg("msg_secret", secret);
  emit_msg("msg_denied", denied);
  emit_msg("msg_ioerror", ioerror);

  guest.assembly = std::move(text);
  return guest;
}

Guest generate(std::uint64_t seed) {
  SynthConfig config;
  config.seed = seed;
  return generate(config);
}

}  // namespace r2r::guests::synth
