#include "guests/synth.h"

#include <string_view>
#include <vector>

#include "support/rng.h"
#include "support/strings.h"

namespace r2r::guests::synth {

namespace {

constexpr std::string_view kCharset = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

char draw_char(support::Rng& rng) {
  return kCharset[static_cast<std::size_t>(rng.next_below(kCharset.size()))];
}

std::string draw_token(support::Rng& rng, std::size_t length) {
  std::string token;
  token.reserve(length);
  for (std::size_t i = 0; i < length; ++i) token.push_back(draw_char(rng));
  return token;
}

/// Per-target assembly idioms: register names for the fixed roles the
/// generator uses, the immediate range, and the inc/dec spelling. RV32I has
/// no inc/dec/imul and only simm12 ALU immediates; its digest is a 32-bit
/// x33 shift-add recurrence instead of the 64-bit multiply.
struct Dialect {
  isa::Arch arch;
  bool rv;           ///< register-save RISC target (rv32i)
  const char* acc;   ///< rax / a0 — accumulator, syscall nr + verdict
  const char* cnt;   ///< rcx / a1 — loop counter
  const char* dat;   ///< rdx / a2 — second temp, syscall arg2
  const char* tmp;   ///< rbx / a3 — scratch byte
  const char* ptr;   ///< rsi / a4 — input pointer, syscall arg1
  const char* ptr2;  ///< rdi / a5 — reference pointer, syscall arg0
};

Dialect dialect_for(isa::Arch arch) {
  if (arch == isa::Arch::kRv32i) {
    return {arch, true, "a0", "a1", "a2", "a3", "a4", "a5"};
  }
  return {arch, false, "rax", "rcx", "rdx", "rbx", "rsi", "rdi"};
}

std::string inc_reg(const Dialect& d, const char* reg) {
  return d.rv ? "    add " + std::string(reg) + ", 1\n"
              : "    inc " + std::string(reg) + "\n";
}

std::string dec_reg(const Dialect& d, const char* reg) {
  return d.rv ? "    add " + std::string(reg) + ", -1\n"
              : "    dec " + std::string(reg) + "\n";
}

/// Positive immediate the target's ALU forms accept everywhere the
/// generator uses one (imm32 on x86-64, simm12 on rv32i).
std::uint64_t draw_imm(support::Rng& rng, const Dialect& d) {
  const std::uint64_t mask = d.rv ? 0x7FFULL : 0x7FFFFFFFULL;
  return (rng.next() & mask) | 1;
}

/// The guest-side digest loop mirrored host-side. x86-64: h = (h ^ byte) *
/// prime, 64-bit wrapping (xor+imul). rv32i: h = (h ^ byte) * 33, 32-bit
/// wrapping — the multiply is a shl-5 + add, so no mul instruction needed.
std::uint64_t synth_digest(const Dialect& d, std::string_view data,
                           std::uint64_t basis, std::uint64_t prime) {
  if (d.rv) {
    auto hash = static_cast<std::uint32_t>(basis);
    for (const char c : data) {
      hash = (hash ^ static_cast<std::uint8_t>(c)) * 33u;
    }
    return hash;
  }
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= prime;
  }
  return hash;
}

std::string write_msg(const Dialect& d, const std::string& symbol,
                      std::size_t length) {
  return "    mov " + std::string(d.acc) + ", 1\n"
         "    mov " + d.ptr2 + ", 1\n"
         "    mov " + d.ptr + ", offset " + symbol + "\n"
         "    mov " + d.dat + ", " + std::to_string(length) + "\n"
         "    syscall\n";
}

std::string exit_with(const Dialect& d, int code) {
  return "    mov " + std::string(d.acc) + ", 60\n"
         "    mov " + d.ptr2 + ", " + std::to_string(code) + "\n"
         "    syscall\n";
}

DecisionKind pick_decision(support::Rng& rng, const SynthConfig& config) {
  std::vector<DecisionKind> palette;
  if (config.allow_byte_compare) palette.push_back(DecisionKind::kByteCompare);
  if (config.allow_digest) palette.push_back(DecisionKind::kDigestCompare);
  if (config.allow_multistage) palette.push_back(DecisionKind::kMultiStageGuard);
  if (palette.empty()) palette.push_back(DecisionKind::kByteCompare);
  return palette[static_cast<std::size_t>(rng.next_below(palette.size()))];
}

bool chance(support::Rng& rng, unsigned percent) {
  return rng.next_below(100) < percent;
}

/// Flag-neutral filler instructions (mov/movzx only) inserted between a
/// decision `cmp` and its `jcc` — the Table II/III "compare far from the
/// branch" shape. `allow_loads` admits memory-reading fillers; keep it off
/// inside loops whose registers must survive.
std::string draw_gap_fillers(support::Rng& rng, const Dialect& d, unsigned max_gap,
                             bool allow_loads) {
  std::string out;
  const std::uint64_t count = max_gap == 0 ? 0 : rng.next_below(max_gap + 1);
  for (std::uint64_t i = 0; i < count; ++i) {
    switch (rng.next_below(allow_loads ? 3 : 2)) {
      case 0:
        out += "    mov " + std::string(d.tmp) + ", " +
               std::to_string(draw_imm(rng, d)) + "\n";
        break;
      case 1:
        out += "    mov " + std::string(d.dat) + ", " +
               std::to_string(draw_imm(rng, d)) + "\n";
        break;
      default:
        out += "    mov " + std::string(d.ptr) + ", offset inbuf\n"
               "    movzx " + d.tmp + ", byte ptr [" + d.ptr + "]\n";
        break;
    }
  }
  return out;
}

/// One noise helper of the call tree: scratch arithmetic, an optional
/// two-arm branch, an optional loop with a data-dependent trip count
/// (1..8, derived from an input byte), an optional call deeper into the
/// tree, all seed-chosen.
struct NoiseHelper {
  std::string body;
  bool calls_next = false;
};

NoiseHelper make_noise_helper(support::Rng& rng, const SynthConfig& config,
                              const Dialect& d, unsigned index,
                              unsigned helper_count, unsigned key_len) {
  NoiseHelper helper;
  const std::string name = "noise_" + std::to_string(index);
  const std::string slot =
      index == 0 ? "[" + std::string(d.tmp) + "]"
                 : "[" + std::string(d.tmp) + "+" + std::to_string(8 * index) + "]";
  std::string body;
  body += name + ":\n";
  body += "    mov " + std::string(d.tmp) + ", offset scratch\n";
  body += "    mov " + std::string(d.acc) + ", " + slot + "\n";
  body += "    add " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";
  body += "    xor " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";

  if (chance(rng, config.branch_density_percent)) {
    static constexpr std::string_view kCc[] = {"jb", "ja", "jne", "je"};
    const std::string_view cc = kCc[rng.next_below(4)];
    body += "    cmp " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";
    body += "    " + std::string(cc) + " n" + std::to_string(index) + "_else\n";
    body += "    add " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";
    body += "    jmp n" + std::to_string(index) + "_join\n";
    body += "n" + std::to_string(index) + "_else:\n";
    body += "    xor " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";
    body += "n" + std::to_string(index) + "_join:\n";
  }

  if (chance(rng, config.loop_chance_percent)) {
    const std::uint64_t byte_index = rng.next_below(key_len);
    body += "    mov " + std::string(d.ptr) + ", offset inbuf\n";
    body += "    movzx " + std::string(d.cnt) + ", byte ptr [" + d.ptr + "+" +
            std::to_string(byte_index) + "]\n";
    body += "    and " + std::string(d.cnt) + ", 7\n";
    body += inc_reg(d, d.cnt);
    body += "n" + std::to_string(index) + "_loop:\n";
    body += "    add " + std::string(d.acc) + ", " + std::to_string(draw_imm(rng, d)) + "\n";
    if (config.mov_store_opportunities) {
      body += "    mov " + slot + ", " + d.acc + "\n";
    }
    body += dec_reg(d, d.cnt);
    body += "    cmp " + std::string(d.cnt) + ", 0\n";
    body += "    jne n" + std::to_string(index) + "_loop\n";
  }

  body += "    mov " + slot + ", " + d.acc + "\n";
  // The link register is the only return-address storage on rv32i, so the
  // call tree stays depth-1 there: helpers never call helpers. The rng draw
  // happens on both targets to keep the per-seed shape aligned.
  const bool wants_next = index + 1 < helper_count && chance(rng, 50);
  if (wants_next && !d.rv) {
    helper.calls_next = true;
    body += "    call noise_" + std::to_string(index + 1) + "\n";
  }
  body += "    ret\n";
  helper.body = std::move(body);
  return helper;
}

/// Accumulate-difference byte compare (pincheck's cp_loop shape): xor every
/// input byte against the expected key, OR the differences, one verdict cmp.
std::string byte_compare_accumulate(support::Rng& rng, const SynthConfig& config,
                                    const Dialect& d, const std::string& label,
                                    unsigned offset, unsigned length) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov " + std::string(d.ptr) + ", offset inbuf\n";
  if (offset != 0) body += "    add " + std::string(d.ptr) + ", " + std::to_string(offset) + "\n";
  body += "    mov " + std::string(d.ptr2) + ", offset expected_key\n";
  if (offset != 0) body += "    add " + std::string(d.ptr2) + ", " + std::to_string(offset) + "\n";
  body += "    mov " + std::string(d.cnt) + ", " + std::to_string(length) + "\n";
  body += "    xor " + std::string(d.acc) + ", " + d.acc + "\n";
  body += p + "_loop:\n";
  body += "    movzx " + std::string(d.tmp) + ", byte ptr [" + d.ptr + "]\n";
  body += "    movzx " + std::string(d.dat) + ", byte ptr [" + d.ptr2 + "]\n";
  body += "    xor " + std::string(d.tmp) + ", " + d.dat + "\n";
  body += "    or " + std::string(d.acc) + ", " + d.tmp + "\n";
  body += inc_reg(d, d.ptr);
  body += inc_reg(d, d.ptr2);
  body += dec_reg(d, d.cnt);
  body += "    cmp " + std::string(d.cnt) + ", 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    cmp " + std::string(d.acc) + ", 0\n";
  body += draw_gap_fillers(rng, d, config.max_cmp_jcc_gap, /*allow_loads=*/true);
  body += "    jne " + p + "_fail\n";
  body += "    mov " + std::string(d.acc) + ", 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor " + std::string(d.acc) + ", " + d.acc + "\n";
  body += "    ret\n";
  return body;
}

/// Early-exit byte compare (the bootloader's vm_loop shape): bail at the
/// first mismatching byte. The per-byte cmp/jcc pair may be separated by
/// immediate-only fillers.
std::string byte_compare_early_exit(support::Rng& rng, const SynthConfig& config,
                                    const Dialect& d, const std::string& label,
                                    unsigned offset, unsigned length) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov " + std::string(d.ptr) + ", offset inbuf\n";
  if (offset != 0) body += "    add " + std::string(d.ptr) + ", " + std::to_string(offset) + "\n";
  body += "    mov " + std::string(d.ptr2) + ", offset expected_key\n";
  if (offset != 0) body += "    add " + std::string(d.ptr2) + ", " + std::to_string(offset) + "\n";
  body += "    mov " + std::string(d.cnt) + ", " + std::to_string(length) + "\n";
  body += p + "_loop:\n";
  body += "    movzx " + std::string(d.tmp) + ", byte ptr [" + d.ptr + "]\n";
  body += "    movzx " + std::string(d.dat) + ", byte ptr [" + d.ptr2 + "]\n";
  body += "    cmp " + std::string(d.tmp) + ", " + d.dat + "\n";
  body += draw_gap_fillers(rng, d, config.max_cmp_jcc_gap, /*allow_loads=*/false);
  body += "    jne " + p + "_fail\n";
  body += inc_reg(d, d.ptr);
  body += inc_reg(d, d.ptr2);
  body += dec_reg(d, d.cnt);
  body += "    cmp " + std::string(d.cnt) + ", 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    mov " + std::string(d.acc) + ", 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor " + std::string(d.acc) + ", " + d.acc + "\n";
  body += "    ret\n";
  return body;
}

/// Digest compare (the bootloader's compute_hash shape): seeded basis and
/// odd prime, expected value loaded from a data quad.
std::string digest_compare(support::Rng& rng, const SynthConfig& config,
                           const Dialect& d, const std::string& label,
                           unsigned length, std::uint64_t basis,
                           std::uint64_t prime) {
  const std::string p = label;
  std::string body;
  body += p + ":\n";
  body += "    mov " + std::string(d.ptr) + ", offset inbuf\n";
  body += "    mov " + std::string(d.cnt) + ", " + std::to_string(length) + "\n";
  body += "    mov " + std::string(d.acc) + ", " +
          support::hex_string(d.rv ? (basis & 0xFFFFFFFFULL) : basis) + "\n";
  body += p + "_loop:\n";
  body += "    movzx " + std::string(d.tmp) + ", byte ptr [" + d.ptr + "]\n";
  body += "    xor " + std::string(d.acc) + ", " + d.tmp + "\n";
  if (d.rv) {
    // h *= 33 without a multiplier: h = (h << 5) + h.
    body += "    mov " + std::string(d.dat) + ", " + d.acc + "\n";
    body += "    shl " + std::string(d.acc) + ", 5\n";
    body += "    add " + std::string(d.acc) + ", " + d.dat + "\n";
  } else {
    body += "    mov " + std::string(d.ptr2) + ", " + support::hex_string(prime) + "\n";
    body += "    imul " + std::string(d.acc) + ", " + d.ptr2 + "\n";
  }
  body += inc_reg(d, d.ptr);
  body += dec_reg(d, d.cnt);
  body += "    cmp " + std::string(d.cnt) + ", 0\n";
  body += "    jne " + p + "_loop\n";
  body += "    mov " + std::string(d.ptr2) + ", offset expected_digest\n";
  body += "    mov " + std::string(d.ptr2) + ", [" + d.ptr2 + "]\n";
  body += "    cmp " + std::string(d.acc) + ", " + d.ptr2 + "\n";
  body += draw_gap_fillers(rng, d, config.max_cmp_jcc_gap, /*allow_loads=*/true);
  body += "    jne " + p + "_fail\n";
  body += "    mov " + std::string(d.acc) + ", 1\n";
  body += "    ret\n";
  body += p + "_fail:\n";
  body += "    xor " + std::string(d.acc) + ", " + d.acc + "\n";
  body += "    ret\n";
  return body;
}

}  // namespace

DecisionKind decision_kind(const SynthConfig& config) {
  support::Rng rng(config.seed);
  return pick_decision(rng, config);
}

Guest generate(const SynthConfig& config) {
  support::Rng rng(config.seed);
  const Dialect d = dialect_for(config.arch);

  // ---- decision, key, inputs (fixed draw order: the determinism contract).
  const DecisionKind kind = pick_decision(rng, config);
  const unsigned min_len = config.min_key_len < 2 ? 2 : config.min_key_len;
  const unsigned max_len = config.max_key_len < min_len ? min_len : config.max_key_len;
  const unsigned key_len =
      min_len + static_cast<unsigned>(rng.next_below(max_len - min_len + 1));

  std::string good_key = draw_token(rng, key_len);

  const bool uses_digest =
      kind == DecisionKind::kDigestCompare || kind == DecisionKind::kMultiStageGuard;
  const std::uint64_t basis = rng.next();
  const std::uint64_t prime = rng.next() | 1;

  // One mutated byte; for digest decisions the digests must also differ
  // (redraw deterministically in the vanishingly unlikely collision case).
  std::string bad_key = good_key;
  while (true) {
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(key_len));
    const char replacement = draw_char(rng);
    if (replacement == good_key[pos]) continue;
    bad_key = good_key;
    bad_key[pos] = replacement;
    if (!uses_digest || synth_digest(d, good_key, basis, prime) !=
                            synth_digest(d, bad_key, basis, prime)) {
      break;
    }
  }

  // ---- observable contract.
  const std::string banner = "SYNTH SERVICE " + draw_token(rng, 6) + "\n";
  const std::string granted = "ACCESS GRANTED " + draw_token(rng, 4) + "\n";
  const std::string secret = "SECRET " + draw_token(rng, 8) + "\n";
  const std::string denied = "ACCESS DENIED " + draw_token(rng, 4) + "\n";
  const std::string ioerror = "IO ERROR\n";

  Guest guest;
  guest.name = "synth_" + std::to_string(config.seed);
  guest.arch = config.arch;
  guest.good_input = good_key;
  guest.bad_input = bad_key;
  guest.good_output = banner + granted + secret;
  guest.bad_output = banner + denied;
  guest.good_exit = 0;
  guest.bad_exit = 1;

  // ---- noise-helper call tree.
  const unsigned helper_count =
      config.max_noise_helpers == 0
          ? 0
          : static_cast<unsigned>(rng.next_below(config.max_noise_helpers + 1));
  std::vector<NoiseHelper> helpers;
  helpers.reserve(helper_count);
  for (unsigned i = 0; i < helper_count; ++i) {
    helpers.push_back(make_noise_helper(rng, config, d, i, helper_count, key_len));
  }
  // Helpers not reached through a deeper call are rooted in _start, either
  // before the decision or on the privileged continuation.
  std::vector<unsigned> start_calls_pre;
  std::vector<unsigned> start_calls_post;
  for (unsigned i = 0; i < helper_count; ++i) {
    if (i > 0 && helpers[i - 1].calls_next) continue;  // called by helper i-1
    if (chance(rng, 50)) {
      start_calls_pre.push_back(i);
    } else {
      start_calls_post.push_back(i);
    }
  }

  // ---- decision helpers.
  std::string decision_text;
  bool needs_expected_key = false;
  std::string expected_key_bytes = good_key;  // the byte-compare reference
  unsigned stage_count = 1;
  switch (kind) {
    case DecisionKind::kByteCompare:
      needs_expected_key = true;
      decision_text = chance(rng, 50)
                          ? byte_compare_accumulate(rng, config, d, "check_stage0", 0,
                                                    key_len)
                          : byte_compare_early_exit(rng, config, d, "check_stage0", 0,
                                                    key_len);
      break;
    case DecisionKind::kDigestCompare:
      decision_text =
          digest_compare(rng, config, d, "check_stage0", key_len, basis, prime);
      break;
    case DecisionKind::kMultiStageGuard: {
      // Stage 0 guards the key prefix byte-wise, stage 1 digests the whole
      // input — both must pass.
      needs_expected_key = true;
      stage_count = 2;
      const unsigned prefix = (key_len + 1) / 2;
      decision_text =
          byte_compare_early_exit(rng, config, d, "check_stage0", 0, prefix) + "\n" +
          digest_compare(rng, config, d, "check_stage1", key_len, basis, prime);
      break;
    }
  }

  // ---- _start.
  std::string text;
  text += ".global _start\n";
  text += ".section .text\n";
  text += "_start:\n";
  text += write_msg(d, "msg_banner", banner.size());
  text += "    mov " + std::string(d.acc) + ", 0\n";
  text += "    mov " + std::string(d.ptr2) + ", 0\n";
  text += "    mov " + std::string(d.ptr) + ", offset inbuf\n";
  text += "    mov " + std::string(d.dat) + ", " + std::to_string(key_len) + "\n";
  text += "    syscall\n";
  text += "    cmp " + std::string(d.acc) + ", " + std::to_string(key_len) + "\n";
  text += "    jne io_error\n";
  for (const unsigned i : start_calls_pre) {
    text += "    call noise_" + std::to_string(i) + "\n";
  }
  for (unsigned stage = 0; stage < stage_count; ++stage) {
    text += "    call check_stage" + std::to_string(stage) + "\n";
    text += "    cmp " + std::string(d.acc) + ", 1\n";
    text += draw_gap_fillers(rng, d,
                             config.max_cmp_jcc_gap > 2 ? 2 : config.max_cmp_jcc_gap,
                             /*allow_loads=*/false);
    text += "    jne deny\n";
  }
  for (const unsigned i : start_calls_post) {
    text += "    call noise_" + std::to_string(i) + "\n";
  }
  text += "grant:\n";
  text += write_msg(d, "msg_granted", granted.size());
  text += write_msg(d, "msg_secret", secret.size());
  text += exit_with(d, 0);
  text += "deny:\n";
  text += write_msg(d, "msg_denied", denied.size());
  text += exit_with(d, 1);
  text += "io_error:\n";
  text += write_msg(d, "msg_ioerror", ioerror.size());
  text += exit_with(d, 3);
  text += "\n";
  text += decision_text;
  for (const NoiseHelper& helper : helpers) {
    text += "\n" + helper.body;
  }

  // ---- data.
  text += "\n.section .data\n";
  text += "inbuf: .zero " + std::to_string(((key_len + 15) / 16) * 16) + "\n";
  const unsigned scratch_slots = helper_count == 0 ? 1 : helper_count;
  text += "scratch: .quad 0";
  for (unsigned i = 1; i < scratch_slots; ++i) text += ", 0";
  text += "\n";
  if (needs_expected_key) {
    text += "expected_key: .byte ";
    for (std::size_t i = 0; i < expected_key_bytes.size(); ++i) {
      if (i != 0) text += ", ";
      text += std::to_string(static_cast<unsigned>(
          static_cast<unsigned char>(expected_key_bytes[i])));
    }
    text += "\n";
  }
  if (uses_digest) {
    text += "expected_digest: .quad " +
            support::hex_string(synth_digest(d, good_key, basis, prime)) + "\n";
  }
  const auto emit_msg = [&text](const std::string& symbol, const std::string& message) {
    // Message charset is [A-Z0-9 ] plus the trailing newline — the only
    // byte needing an escape.
    std::string escaped = message;
    escaped.pop_back();
    text += symbol + ": .asciz \"" + escaped + "\\n\"\n";
  };
  emit_msg("msg_banner", banner);
  emit_msg("msg_granted", granted);
  emit_msg("msg_secret", secret);
  emit_msg("msg_denied", denied);
  emit_msg("msg_ioerror", ioerror);

  guest.assembly = std::move(text);
  return guest;
}

Guest generate(std::uint64_t seed) {
  SynthConfig config;
  config.seed = seed;
  return generate(config);
}

Guest generate(std::uint64_t seed, isa::Arch arch) {
  SynthConfig config;
  config.seed = seed;
  config.arch = arch;
  return generate(config);
}

}  // namespace r2r::guests::synth
