#include "guests/guests.h"

#include <vector>

#include "bir/assemble.h"
#include "support/strings.h"

namespace r2r::guests {

namespace {

// Shared syscall boilerplate: write(1, sym, len) followed by exit(code).
std::string write_and_exit(const std::string& symbol, std::size_t length, int code) {
  return "    mov rax, 1\n"
         "    mov rdi, 1\n"
         "    mov rsi, offset " + symbol + "\n"
         "    mov rdx, " + std::to_string(length) + "\n"
         "    syscall\n"
         "    mov rax, 60\n"
         "    mov rdi, " + std::to_string(code) + "\n"
         "    syscall\n";
}

constexpr std::string_view kPinBanner = "R2R PIN SERVICE v1.2\n";
constexpr std::string_view kGranted = "ACCESS GRANTED\n";
constexpr std::string_view kDenied = "ACCESS DENIED\n";
constexpr std::string_view kSecret = "S3CR3T\n";
constexpr std::string_view kBadFormat = "BAD FORMAT\n";
constexpr std::string_view kIoError = "IO ERROR\n";
constexpr std::string_view kBootBanner = "R2R SECURE BOOT v2\n";
constexpr std::string_view kBootOk = "BOOT PAYLOAD\n";
constexpr std::string_view kBootFail = "SECURE BOOT FAIL\n";
constexpr std::string_view kBadMagic = "BAD MAGIC\n";
constexpr std::string_view kShortRead = "SHORT READ\n";
constexpr std::string_view kYes = "YES\n";
constexpr std::string_view kNo = "NO\n";
constexpr std::string_view kFirmwareMagic = "R2RFIRM!";

std::string write_msg(const std::string& symbol, std::size_t length) {
  return "    mov rax, 1\n"
         "    mov rdi, 1\n"
         "    mov rsi, offset " + symbol + "\n"
         "    mov rdx, " + std::to_string(length) + "\n"
         "    syscall\n";
}

// Case study 1: a PIN service with a banner, I/O check, digit-format
// validation, constant-time-style comparison, and attempt accounting —
// the comparison + conditional branch guarding the privileged continuation
// is exactly the structure Section IV-B.1 attacks.
Guest make_pincheck() {
  Guest guest;
  guest.name = "pincheck";
  guest.good_input = "7391";
  guest.bad_input = "0000";
  guest.good_output =
      std::string(kPinBanner) + std::string(kGranted) + std::string(kSecret);
  guest.bad_output = std::string(kPinBanner) + std::string(kDenied);
  guest.good_exit = 0;
  guest.bad_exit = 1;
  guest.assembly =
      ".global _start\n"
      ".section .text\n"
      "_start:\n" +
      write_msg("msg_banner", kPinBanner.size()) +
      "    mov rax, 0\n"
      "    mov rdi, 0\n"
      "    mov rsi, offset pinbuf\n"
      "    mov rdx, 4\n"
      "    syscall\n"
      "    cmp rax, 4\n"
      "    jne io_error\n"
      "    call validate_format\n"
      "    cmp rax, 1\n"
      "    jne format_error\n"
      "    call check_pin\n"
      "    cmp rax, 1\n"
      "    jne deny\n"
      "grant:\n"
      "    call log_success\n" +
      write_msg("msg_granted", kGranted.size()) +
      write_and_exit("secret", kSecret.size(), 0) +
      "deny:\n"
      "    call log_failure\n" +
      write_and_exit("msg_denied", kDenied.size(), 1) +
      "format_error:\n" +
      write_and_exit("msg_badformat", kBadFormat.size(), 2) +
      "io_error:\n" +
      write_and_exit("msg_ioerror", kIoError.size(), 3) +
      "\n"
      "validate_format:\n"
      "    mov rsi, offset pinbuf\n"
      "    mov rcx, 4\n"
      "vf_loop:\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    cmp rbx, 48\n"
      "    jb vf_bad\n"
      "    cmp rbx, 57\n"
      "    ja vf_bad\n"
      "    inc rsi\n"
      "    dec rcx\n"
      "    cmp rcx, 0\n"
      "    jne vf_loop\n"
      "    mov rax, 1\n"
      "    ret\n"
      "vf_bad:\n"
      "    xor rax, rax\n"
      "    ret\n"
      "\n"
      "check_pin:\n"  // accumulate-difference comparison (no early exit)
      "    mov rsi, offset pinbuf\n"
      "    mov rdi, offset expected_pin\n"
      "    mov rcx, 4\n"
      "    xor rax, rax\n"
      "cp_loop:\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    movzx rdx, byte ptr [rdi]\n"
      "    xor rbx, rdx\n"
      "    or rax, rbx\n"
      "    inc rsi\n"
      "    inc rdi\n"
      "    dec rcx\n"
      "    cmp rcx, 0\n"
      "    jne cp_loop\n"
      // Branch-based verdict: like the paper's case studies, every
      // security decision is a comparison + conditional jump (Section V-C
      // notes all their vulnerabilities were conditional-jump-related).
      "    cmp rax, 0\n"
      "    jne cp_fail\n"
      "    mov rax, 1\n"
      "    ret\n"
      "cp_fail:\n"
      "    xor rax, rax\n"
      "    ret\n"
      "\n"
      "log_success:\n"
      "    mov rbx, offset stats\n"
      "    mov rax, [rbx]\n"
      "    inc rax\n"
      "    mov [rbx], rax\n"
      "    ret\n"
      "log_failure:\n"
      "    mov rbx, offset stats\n"
      "    mov rax, [rbx+8]\n"
      "    inc rax\n"
      "    mov [rbx+8], rax\n"
      "    ret\n"
      "\n"
      ".section .data\n"
      "expected_pin: .ascii \"7391\"\n"
      "pinbuf: .zero 8\n"
      "stats: .quad 0, 0\n"
      "msg_banner: .asciz \"R2R PIN SERVICE v1.2\\n\"\n"
      "msg_granted: .asciz \"ACCESS GRANTED\\n\"\n"
      "msg_denied: .asciz \"ACCESS DENIED\\n\"\n"
      "msg_badformat: .asciz \"BAD FORMAT\\n\"\n"
      "msg_ioerror: .asciz \"IO ERROR\\n\"\n"
      "secret: .asciz \"S3CR3T\\n\"\n";
  return guest;
}

// Case study 2: a two-stage secure bootloader. Firmware images are
// magic-tagged ("R2RFIRM!" header + 64-byte body); the loader verifies the
// magic, copies the body from the staging buffer into the active region,
// hashes it (FNV-1a, the paper's "hash of the content of a memory
// location"), and boots the payload only if the digest matches.
Guest make_bootloader() {
  Guest guest;
  guest.name = "bootloader";
  guest.good_input = std::string(kFirmwareMagic) + good_firmware();
  std::string tampered = good_firmware();
  tampered[17] ^= 0x40;  // one flipped bit in the firmware body
  guest.bad_input = std::string(kFirmwareMagic) + tampered;
  guest.good_output = std::string(kBootBanner) + std::string(kBootOk);
  guest.bad_output = std::string(kBootBanner) + std::string(kBootFail);
  guest.good_exit = 0;
  guest.bad_exit = 1;

  const std::uint64_t digest = fnv1a(good_firmware());
  guest.assembly =
      ".global _start\n"
      ".section .text\n"
      "_start:\n" +
      write_msg("msg_banner", kBootBanner.size()) +
      "    mov rax, 0\n"
      "    mov rdi, 0\n"
      "    mov rsi, offset staging\n"
      "    mov rdx, 72\n"
      "    syscall\n"
      "    cmp rax, 72\n"
      "    jne io_error\n"
      "    call verify_magic\n"
      "    cmp rax, 1\n"
      "    jne magic_error\n"
      "    call copy_body\n"
      "    call compute_hash\n"
      "    mov rdi, offset expected_hash\n"
      "    mov rdi, [rdi]\n"
      "    cmp rax, rdi\n"
      "    jne boot_fail\n"
      "boot_ok:\n"
      "    call launch_payload\n"
      "    mov rax, 60\n"
      "    mov rdi, 0\n"
      "    syscall\n"
      "boot_fail:\n" +
      write_and_exit("msg_fail", kBootFail.size(), 1) +
      "magic_error:\n" +
      write_and_exit("msg_badmagic", kBadMagic.size(), 2) +
      "io_error:\n" +
      write_and_exit("msg_shortread", kShortRead.size(), 3) +
      "\n"
      "verify_magic:\n"
      "    mov rsi, offset staging\n"
      "    mov rdi, offset magic_ref\n"
      "    mov rcx, 8\n"
      "vm_loop:\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    movzx rdx, byte ptr [rdi]\n"
      "    cmp rbx, rdx\n"
      "    jne vm_bad\n"
      "    inc rsi\n"
      "    inc rdi\n"
      "    dec rcx\n"
      "    cmp rcx, 0\n"
      "    jne vm_loop\n"
      "    mov rax, 1\n"
      "    ret\n"
      "vm_bad:\n"
      "    xor rax, rax\n"
      "    ret\n"
      "\n"
      "copy_body:\n"
      "    mov rsi, offset staging\n"
      "    add rsi, 8\n"
      "    mov rdi, offset active\n"
      "    mov rcx, 64\n"
      "cb_loop:\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    mov byte ptr [rdi], bl\n"
      "    inc rsi\n"
      "    inc rdi\n"
      "    dec rcx\n"
      "    cmp rcx, 0\n"
      "    jne cb_loop\n"
      "    ret\n"
      "\n"
      "compute_hash:\n"
      "    mov rsi, offset active\n"
      "    mov rcx, 64\n"
      "    mov rax, 0xcbf29ce484222325\n"  // FNV-1a offset basis
      "ch_loop:\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    xor rax, rbx\n"
      "    mov rdi, 0x100000001b3\n"  // FNV-1a prime
      "    imul rax, rdi\n"
      "    inc rsi\n"
      "    dec rcx\n"
      "    cmp rcx, 0\n"
      "    jne ch_loop\n"
      "    ret\n"
      "\n"
      "launch_payload:\n" +
      write_msg("msg_ok", kBootOk.size()) +
      "    ret\n"
      "\n"
      ".section .data\n"
      "magic_ref: .ascii \"R2RFIRM!\"\n"
      "staging: .zero 80\n"
      "active: .zero 64\n"
      "expected_hash: .quad " + support::hex_string(digest) + "\n"
      "msg_banner: .asciz \"R2R SECURE BOOT v2\\n\"\n"
      "msg_ok: .asciz \"BOOT PAYLOAD\\n\"\n"
      "msg_fail: .asciz \"SECURE BOOT FAIL\\n\"\n"
      "msg_badmagic: .asciz \"BAD MAGIC\\n\"\n"
      "msg_shortread: .asciz \"SHORT READ\\n\"\n";
  return guest;
}

// RV32I flavours of the syscall boilerplate: the abstract syscall registers
// map to a0 (nr/ret), a5 (arg0), a4 (arg1), a2 (arg2); immediates are built
// with add (no inc/dec) and fit the addi range by construction.
std::string rv_write_msg(const std::string& symbol, std::size_t length) {
  return "    mov a0, 1\n"
         "    mov a5, 1\n"
         "    mov a4, offset " + symbol + "\n"
         "    mov a2, " + std::to_string(length) + "\n"
         "    syscall\n";
}

std::string rv_write_and_exit(const std::string& symbol, std::size_t length, int code) {
  return rv_write_msg(symbol, length) +
         "    mov a0, 60\n"
         "    mov a5, " + std::to_string(code) + "\n"
         "    syscall\n";
}

// The pincheck port: same banner/verdict/stats contract as the x86-64
// original, depth-1 calls only (helpers never call helpers — the link
// register is the only return-address storage on this target).
Guest make_pincheck_rv32i() {
  Guest guest;
  guest.name = "pincheck";
  guest.arch = isa::Arch::kRv32i;
  guest.good_input = "7391";
  guest.bad_input = "0000";
  guest.good_output =
      std::string(kPinBanner) + std::string(kGranted) + std::string(kSecret);
  guest.bad_output = std::string(kPinBanner) + std::string(kDenied);
  guest.good_exit = 0;
  guest.bad_exit = 1;
  guest.assembly =
      ".global _start\n"
      ".section .text\n"
      "_start:\n" +
      rv_write_msg("msg_banner", kPinBanner.size()) +
      "    mov a0, 0\n"
      "    mov a5, 0\n"
      "    mov a4, offset pinbuf\n"
      "    mov a2, 4\n"
      "    syscall\n"
      "    cmp a0, 4\n"
      "    jne io_error\n"
      "    call validate_format\n"
      "    cmp a0, 1\n"
      "    jne format_error\n"
      "    call check_pin\n"
      "    cmp a0, 1\n"
      "    jne deny\n"
      "grant:\n"
      "    call log_success\n" +
      rv_write_msg("msg_granted", kGranted.size()) +
      rv_write_and_exit("secret", kSecret.size(), 0) +
      "deny:\n"
      "    call log_failure\n" +
      rv_write_and_exit("msg_denied", kDenied.size(), 1) +
      "format_error:\n" +
      rv_write_and_exit("msg_badformat", kBadFormat.size(), 2) +
      "io_error:\n" +
      rv_write_and_exit("msg_ioerror", kIoError.size(), 3) +
      "\n"
      "validate_format:\n"
      "    mov a4, offset pinbuf\n"
      "    mov a1, 4\n"
      "vf_loop:\n"
      "    movzx a3, byte ptr [a4]\n"
      "    cmp a3, 48\n"
      "    jb vf_bad\n"
      "    cmp a3, 57\n"
      "    ja vf_bad\n"
      "    add a4, 1\n"
      "    add a1, -1\n"
      "    cmp a1, 0\n"
      "    jne vf_loop\n"
      "    mov a0, 1\n"
      "    ret\n"
      "vf_bad:\n"
      "    xor a0, a0\n"
      "    ret\n"
      "\n"
      "check_pin:\n"  // accumulate-difference comparison (no early exit)
      "    mov a4, offset pinbuf\n"
      "    mov a5, offset expected_pin\n"
      "    mov a1, 4\n"
      "    xor a0, a0\n"
      "cp_loop:\n"
      "    movzx a3, byte ptr [a4]\n"
      "    movzx a2, byte ptr [a5]\n"
      "    xor a3, a2\n"
      "    or a0, a3\n"
      "    add a4, 1\n"
      "    add a5, 1\n"
      "    add a1, -1\n"
      "    cmp a1, 0\n"
      "    jne cp_loop\n"
      "    cmp a0, 0\n"
      "    jne cp_fail\n"
      "    mov a0, 1\n"
      "    ret\n"
      "cp_fail:\n"
      "    xor a0, a0\n"
      "    ret\n"
      "\n"
      "log_success:\n"
      "    mov a3, offset stats\n"
      "    mov a0, [a3]\n"
      "    add a0, 1\n"
      "    mov [a3], a0\n"
      "    ret\n"
      "log_failure:\n"
      "    mov a3, offset stats\n"
      "    mov a0, [a3+8]\n"
      "    add a0, 1\n"
      "    mov [a3+8], a0\n"
      "    ret\n"
      "\n"
      ".section .data\n"
      "expected_pin: .ascii \"7391\"\n"
      "pinbuf: .zero 8\n"
      "stats: .quad 0, 0\n"
      "msg_banner: .asciz \"R2R PIN SERVICE v1.2\\n\"\n"
      "msg_granted: .asciz \"ACCESS GRANTED\\n\"\n"
      "msg_denied: .asciz \"ACCESS DENIED\\n\"\n"
      "msg_badformat: .asciz \"BAD FORMAT\\n\"\n"
      "msg_ioerror: .asciz \"IO ERROR\\n\"\n"
      "secret: .asciz \"S3CR3T\\n\"\n";
  return guest;
}

Guest make_toymov_rv32i() {
  Guest guest;
  guest.name = "toymov";
  guest.arch = isa::Arch::kRv32i;
  guest.good_input = "A";
  guest.bad_input = "B";
  guest.good_output = std::string(kYes);
  guest.bad_output = std::string(kNo);
  guest.good_exit = 0;
  guest.bad_exit = 1;
  guest.assembly =
      ".global _start\n"
      ".section .text\n"
      "_start:\n"
      "    mov a0, 0\n"
      "    mov a5, 0\n"
      "    mov a4, offset buf\n"
      "    mov a2, 1\n"
      "    syscall\n"
      "    mov a4, offset buf\n"
      "    movzx a3, byte ptr [a4]\n"
      "    cmp a3, 65\n"
      "    jne no\n"
      "yes:\n" +
      rv_write_and_exit("msg_yes", kYes.size(), 0) +
      "no:\n" +
      rv_write_and_exit("msg_no", kNo.size(), 1) +
      "\n"
      ".section .data\n"
      "buf: .zero 8\n"
      "msg_yes: .asciz \"YES\\n\"\n"
      "msg_no: .asciz \"NO\\n\"\n";
  return guest;
}

Guest make_toymov() {
  Guest guest;
  guest.name = "toymov";
  guest.good_input = "A";
  guest.bad_input = "B";
  guest.good_output = std::string(kYes);
  guest.bad_output = std::string(kNo);
  guest.good_exit = 0;
  guest.bad_exit = 1;
  guest.assembly =
      ".global _start\n"
      ".section .text\n"
      "_start:\n"
      "    mov rax, 0\n"
      "    mov rdi, 0\n"
      "    mov rsi, offset buf\n"
      "    mov rdx, 1\n"
      "    syscall\n"
      "    mov rsi, offset buf\n"
      "    movzx rbx, byte ptr [rsi]\n"
      "    cmp rbx, 65\n"
      "    jne no\n"
      "yes:\n" +
      write_and_exit("msg_yes", kYes.size(), 0) +
      "no:\n" +
      write_and_exit("msg_no", kNo.size(), 1) +
      "\n"
      ".section .data\n"
      "buf: .zero 8\n"
      "msg_yes: .asciz \"YES\\n\"\n"
      "msg_no: .asciz \"NO\\n\"\n";
  return guest;
}

}  // namespace

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string good_firmware() {
  std::string firmware(64, '\0');
  for (std::size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<char>((i * 7 + 3) & 0xFF);
  }
  return firmware;
}

const Guest& pincheck() {
  static const Guest guest = make_pincheck();
  return guest;
}

const Guest& bootloader() {
  static const Guest guest = make_bootloader();
  return guest;
}

const Guest& toymov() {
  static const Guest guest = make_toymov();
  return guest;
}

const Guest& pincheck_rv32i() {
  static const Guest guest = make_pincheck_rv32i();
  return guest;
}

const Guest& toymov_rv32i() {
  static const Guest guest = make_toymov_rv32i();
  return guest;
}

const std::vector<const Guest*>& all_guests() {
  static const std::vector<const Guest*> guests = {&pincheck(), &bootloader(), &toymov()};
  return guests;
}

const std::vector<const Guest*>& all_guests(isa::Arch arch) {
  static const std::vector<const Guest*> rv32i = {&pincheck_rv32i(), &toymov_rv32i()};
  return arch == isa::Arch::kRv32i ? rv32i : all_guests();
}

const Guest* find_guest(std::string_view name, isa::Arch arch) {
  for (const Guest* guest : all_guests(arch)) {
    if (guest->name == name) return guest;
  }
  return nullptr;
}

bir::Module build_module(const Guest& guest) {
  return bir::module_from_assembly(guest.assembly, guest.arch);
}

elf::Image build_image(const Guest& guest) {
  bir::Module module = build_module(guest);
  return bir::assemble(module);
}

}  // namespace r2r::guests
