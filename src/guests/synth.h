// r2r::guests::synth — deterministic, seed-parameterized guest generator.
//
// Every invariant the pipeline claims (behaviour preservation through
// lift→harden→lower→patch→ELF round-trip, "hardening never adds
// vulnerabilities", fix-point reachability) is only as trustworthy as the
// set of programs it was checked on. This generator turns the three
// hand-written case studies into an unbounded family: for any seed it
// emits a random-but-well-formed Guest in the r2r assembly dialect —
// a randomized control-flow skeleton (straight-line stretches, loops with
// data-dependent trip counts, a call tree of noise helpers), one
// security-sensitive decision point (PIN-style byte compare, digest
// compare, or a multi-stage guard) and host-side derived
// good_input/bad_input/expected-output oracles.
//
// Determinism contract: generate() is a pure function of SynthConfig.
// The same config (and in particular the same seed) yields byte-identical
// assembly, inputs, and oracles on every host — a failing seed printed by
// the property harness is a permanent repro.
#pragma once

#include <cstdint>
#include <string>

#include "guests/guests.h"

namespace r2r::guests::synth {

/// Which security decision guards the privileged continuation. Each maps
/// to a structure from the paper's case studies (Section V-C).
enum class DecisionKind : std::uint8_t {
  kByteCompare,      ///< PIN-style byte loop (accumulate or early-exit)
  kDigestCompare,    ///< FNV-1a-style digest of the input vs expected quad
  kMultiStageGuard,  ///< prefix byte compare, then whole-input digest
};

/// Generator knobs. All randomness is drawn from `seed` alone; the other
/// fields bound the shapes the seed can select.
struct SynthConfig {
  std::uint64_t seed = 0;
  /// Assembly dialect the guest targets. The program structure is the same
  /// across targets for a given seed; registers, immediate ranges, and the
  /// digest recurrence follow the target (rv32i digests with a 32-bit x33
  /// shift-add since the ISA has no multiply).
  isa::Arch arch = isa::Arch::kX64;

  // ---- size ----------------------------------------------------------------
  unsigned min_key_len = 4;  ///< input length lower bound (bytes)
  unsigned max_key_len = 8;  ///< input length upper bound (bytes)
  /// Noise helpers form the call tree: _start calls a random subset, and a
  /// helper may call a later helper (acyclic by construction).
  unsigned max_noise_helpers = 3;

  // ---- branch density ------------------------------------------------------
  /// Chance (percent) that a noise helper contains a two-arm conditional
  /// over its scratch value, and that _start interleaves extra noise calls.
  unsigned branch_density_percent = 40;
  /// Chance (percent) that a noise helper contains a loop whose trip count
  /// is data-dependent (derived from an input byte, 1..8 iterations).
  unsigned loop_chance_percent = 60;

  // ---- Tables I–III pattern opportunities ----------------------------------
  /// Max flag-neutral filler *draws* between the decision `cmp` and its
  /// `jcc` (Table II/III shapes with the compare far from the branch; the
  /// "cmp-far-apart" structural corner). Drawn uniformly in [0, max]; a
  /// draw emits one immediate-mov or one two-instruction load pair, so the
  /// instruction distance can reach 2*max.
  unsigned max_cmp_jcc_gap = 4;
  /// Emit memory-store `mov`s in noise loops (Table I mov opportunities).
  bool mov_store_opportunities = true;

  // ---- decision-point palette ----------------------------------------------
  bool allow_byte_compare = true;
  bool allow_digest = true;
  bool allow_multistage = true;
};

/// Generates the guest selected by `config`. Pure and deterministic: equal
/// configs yield byte-identical Guests. The guest's name is
/// "synth_<seed>". Throws nothing; every emitted program parses, builds,
/// and shows the differential good/bad behaviour by construction.
Guest generate(const SynthConfig& config);

/// generate() with default knobs and the given seed.
Guest generate(std::uint64_t seed);

/// generate() with default knobs for an explicit target.
Guest generate(std::uint64_t seed, isa::Arch arch);

/// The decision kind `config` selects (the first RNG draw); exposed so
/// harnesses can stratify assertions by decision structure.
DecisionKind decision_kind(const SynthConfig& config);

}  // namespace r2r::guests::synth
