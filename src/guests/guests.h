// r2r::guests — the paper's case-study programs, written in the subset
// assembly dialect and built into ELF images via the bir layer.
//
// Each guest reads its security-relevant input from stdin (the PIN for
// pincheck, the firmware image for the secure bootloader), performs a
// comparison, and either continues to a privileged continuation (prints a
// secret / boots the payload, exit 0) or refuses (exit 1). A "successful
// fault" flips a bad-input run into the privileged behaviour — exactly the
// scenario of Section IV-B.1 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bir/module.h"
#include "elf/image.h"

namespace r2r::guests {

struct Guest {
  std::string name;
  isa::Arch arch = isa::Arch::kX64;  ///< dialect the assembly is written in
  std::string assembly;     ///< source text in the r2r dialect
  std::string good_input;   ///< authorized input
  std::string bad_input;    ///< attacker input
  std::string good_output;  ///< expected stdout for good_input
  std::string bad_output;   ///< expected stdout for bad_input
  int good_exit = 0;
  int bad_exit = 1;
};

/// Case study 1 (Section V-C): PIN check guarding a secret.
const Guest& pincheck();

/// Case study 2 (Section V-C): secure bootloader hashing a firmware image
/// (FNV-1a over 64 bytes) and comparing against an expected digest.
const Guest& bootloader();

/// Minimal mov/cmp/branch demo used by the quickstart and pattern tests.
const Guest& toymov();

/// RV32I port of pincheck: same observable contract, written in the rv32i
/// register dialect (a0..a7/t*, add-immediate instead of inc/dec, depth-1
/// calls through the link register).
const Guest& pincheck_rv32i();

/// RV32I port of toymov.
const Guest& toymov_rv32i();

/// All built-in guests, for parameterized tests (the historical zero-arg
/// form lists the x86-64 case studies).
const std::vector<const Guest*>& all_guests();
const std::vector<const Guest*>& all_guests(isa::Arch arch);

/// Case-study lookup by name ("pincheck", "bootloader", "toymov");
/// nullptr when no built-in guest has that name for `arch`. The registry
/// behind every name-driven surface (the r2r CLI, batch configs).
const Guest* find_guest(std::string_view name, isa::Arch arch = isa::Arch::kX64);

/// The 64-byte firmware accepted by the bootloader.
std::string good_firmware();

/// FNV-1a 64-bit digest (the bootloader's hash function, host-side).
std::uint64_t fnv1a(std::string_view data);

bir::Module build_module(const Guest& guest);
elf::Image build_image(const Guest& guest);

}  // namespace r2r::guests
