// r2r::guests — the paper's case-study programs, written in the subset
// assembly dialect and built into ELF images via the bir layer.
//
// Each guest reads its security-relevant input from stdin (the PIN for
// pincheck, the firmware image for the secure bootloader), performs a
// comparison, and either continues to a privileged continuation (prints a
// secret / boots the payload, exit 0) or refuses (exit 1). A "successful
// fault" flips a bad-input run into the privileged behaviour — exactly the
// scenario of Section IV-B.1 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bir/module.h"
#include "elf/image.h"

namespace r2r::guests {

struct Guest {
  std::string name;
  std::string assembly;     ///< source text in the r2r dialect
  std::string good_input;   ///< authorized input
  std::string bad_input;    ///< attacker input
  std::string good_output;  ///< expected stdout for good_input
  std::string bad_output;   ///< expected stdout for bad_input
  int good_exit = 0;
  int bad_exit = 1;
};

/// Case study 1 (Section V-C): PIN check guarding a secret.
const Guest& pincheck();

/// Case study 2 (Section V-C): secure bootloader hashing a firmware image
/// (FNV-1a over 64 bytes) and comparing against an expected digest.
const Guest& bootloader();

/// Minimal mov/cmp/branch demo used by the quickstart and pattern tests.
const Guest& toymov();

/// All three, for parameterized tests.
const std::vector<const Guest*>& all_guests();

/// Case-study lookup by name ("pincheck", "bootloader", "toymov");
/// nullptr when no built-in guest has that name. The registry behind every
/// name-driven surface (the r2r CLI, batch configs).
const Guest* find_guest(std::string_view name);

/// The 64-byte firmware accepted by the bootloader.
std::string good_firmware();

/// FNV-1a 64-bit digest (the bootloader's hash function, host-side).
std::uint64_t fnv1a(std::string_view data);

bir::Module build_module(const Guest& guest);
elf::Image build_image(const Guest& guest);

}  // namespace r2r::guests
