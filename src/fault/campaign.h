// r2r::fault — the faulter (Fig. 2 of the paper).
//
// Runs a differential fault-injection campaign: record the golden traces of
// a "good" (authorized) and "bad" (attacker) input, then for every dynamic
// instruction of the bad-input trace inject each fault the chosen model
// allows and classify the observable outcome. A fault is a vulnerability
// ("successful fault") when the bad-input run becomes observably identical
// to the good-input run.
//
// This layer is a thin client of the sim:: engine, which executes the
// sweep from copy-on-write snapshots (optionally across worker threads)
// instead of replaying every faulted run from entry. A single-threaded
// campaign classifies bit-identically to the seed full-replay faulter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "elf/image.h"
#include "emu/machine.h"
#include "patch/detected_exit.h"
#include "sim/engine.h"

namespace r2r::fault {

// The classification vocabulary and vulnerability record are defined by
// the engine; fault:: re-exports them as its public campaign API.
using sim::Outcome;
using sim::pair_patch_sites;
using sim::PairVulnerability;
using sim::strictly_order_k;
using sim::to_string;
using sim::tuple_patch_sites;
using sim::TupleLevelSummary;
using sim::TupleVulnerability;
using sim::Vulnerability;

/// Highest campaign order the surfaces accept (protection patterns, CLI
/// flags and the service agree on this bound; the sim engine itself is
/// order-agnostic).
inline constexpr unsigned kMaxCampaignOrder = 4;

struct CampaignConfig {
  /// The fault models the campaign sweeps, handed to the sim:: engine
  /// verbatim — one struct shared with the engine, so a model added to
  /// sim::FaultModels is automatically campaign-visible (the previous
  /// field-by-field copy silently dropped any knob it didn't know about).
  /// Covers the paper's models (skip, bit_flip), the r2r extension models,
  /// and the campaign order / pair_window of order-2 sweeps.
  sim::FaultModels models;
  /// Exit code the injected fault handler uses; defaults to the one
  /// patch-layer constant so the faulter and the patcher cannot drift.
  int detected_exit_code = patch::kDetectedExit;
  /// Extra fuel multiplier over the golden bad-input run (faulted runs that
  /// exceed golden_steps * multiplier + slack are classified kHang).
  std::uint64_t fuel_multiplier = 8;
  std::uint64_t fuel_slack = 4096;
  /// Worker threads for the sweep (0 = hardware concurrency). Results are
  /// bit-identical for every thread count.
  unsigned threads = 1;
  /// Order 2: classify pairs from the order-1 profiles where provably
  /// equivalent instead of simulating them (exact; see sim::EngineConfig).
  bool pair_outcome_reuse = true;
};

struct CampaignResult {
  std::vector<Vulnerability> vulnerabilities;
  std::map<Outcome, std::uint64_t> outcome_counts;
  std::uint64_t total_faults = 0;
  std::uint64_t trace_length = 0;

  /// Order-2 extension: filled only when CampaignConfig::models.order == 2.
  /// The order-1 fields above are still populated (phase A of the pair
  /// sweep).
  std::vector<PairVulnerability> pair_vulnerabilities;
  std::map<Outcome, std::uint64_t> pair_outcome_counts;
  std::uint64_t total_pairs = 0;
  std::uint64_t reused_pairs = 0;  ///< pairs classified without simulation

  /// Order-k (>= 3) extension: filled only when models.order >= 3. The
  /// order-1 fields above are still populated; the pair fields stay empty —
  /// `tuple_levels` carries the per-level (order 2..k) residue instead.
  unsigned tuple_order = 0;
  std::vector<TupleVulnerability> tuple_vulnerabilities;
  std::map<Outcome, std::uint64_t> tuple_outcome_counts;
  std::uint64_t total_tuples = 0;       ///< classified at the top level
  std::uint64_t enumerated_tuples = 0;  ///< full top-level space
  std::uint64_t reused_tuples = 0;      ///< top-level tuples classified without simulation
  bool tuples_sampled = false;          ///< the top level ran under a max_tuples budget
  std::vector<TupleLevelSummary> tuple_levels;

  [[nodiscard]] std::uint64_t count(Outcome outcome) const {
    const auto it = outcome_counts.find(outcome);
    return it == outcome_counts.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t pair_count(Outcome outcome) const {
    const auto it = pair_outcome_counts.find(outcome);
    return it == pair_outcome_counts.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t tuple_count(Outcome outcome) const {
    const auto it = tuple_outcome_counts.find(outcome);
    return it == tuple_outcome_counts.end() ? 0 : it->second;
  }
  /// Successful tuples at the intermediate levels (orders 2..k-1) of an
  /// order-k campaign — lower-order residue the recursion surfaced anyway.
  [[nodiscard]] std::uint64_t successful_lower_tuples() const;
  /// Successful top-level tuples none of whose faults succeeds alone.
  [[nodiscard]] std::uint64_t strictly_order_k_count() const;
  /// Distinct static instruction addresses with at least one successful
  /// fault — the paper's "number of vulnerable points".
  [[nodiscard]] std::vector<std::uint64_t> vulnerable_addresses() const;
  /// Successful pairs neither of whose component faults succeeds alone —
  /// the flattened analogue of sim::PairCampaignResult::strictly_higher_order.
  [[nodiscard]] std::uint64_t strictly_second_order_count() const;

  /// JSON document for downstream tooling: the order-1 counters and
  /// vulnerable addresses, plus the pair counters / implicated patch sites
  /// when the campaign ran at order 2, plus the tuple counters / level
  /// summaries when it ran at order >= 3 (schema in docs/formats.md).
  [[nodiscard]] std::string to_json() const;
};

/// Golden (fault-free) references for both inputs. Throws Error{kExecution}
/// if the binary does not show the expected differential behaviour.
struct Oracle {
  emu::RunResult good_reference;
  emu::RunResult bad_reference;
  std::vector<emu::TraceEntry> bad_trace;

  Outcome classify(const emu::RunResult& run, int detected_exit_code) const;
};

Oracle make_oracle(const elf::Image& image, const std::string& good_input,
                   const std::string& bad_input);

CampaignResult run_campaign(const elf::Image& image, const std::string& good_input,
                            const std::string& bad_input,
                            const CampaignConfig& config = {});

}  // namespace r2r::fault
