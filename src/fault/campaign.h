// r2r::fault — the faulter (Fig. 2 of the paper).
//
// Runs a differential fault-injection campaign: record the golden traces of
// a "good" (authorized) and "bad" (attacker) input, then for every dynamic
// instruction of the bad-input trace inject each fault the chosen model
// allows and classify the observable outcome. A fault is a vulnerability
// ("successful fault") when the bad-input run becomes observably identical
// to the good-input run.
//
// This layer is a thin client of the sim:: engine, which executes the
// sweep from copy-on-write snapshots (optionally across worker threads)
// instead of replaying every faulted run from entry. A single-threaded
// campaign classifies bit-identically to the seed full-replay faulter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "elf/image.h"
#include "emu/machine.h"
#include "sim/engine.h"

namespace r2r::fault {

// The classification vocabulary and vulnerability record are defined by
// the engine; fault:: re-exports them as its public campaign API.
using sim::Outcome;
using sim::PairVulnerability;
using sim::to_string;
using sim::Vulnerability;

struct CampaignConfig {
  bool model_skip = true;      ///< the paper's "instruction skip" model
  bool model_bit_flip = true;  ///< the paper's "single bit flip" model
  // r2r extension models (off by default; the paper evaluates the two above).
  bool model_register_flip = false;  ///< GPR bit flips before each instruction
  bool model_flag_flip = false;      ///< status-flag flips before each instruction
  /// Registers swept by the register-flip model (kept small: the full
  /// 16x64 matrix per trace entry is rarely worth the time).
  std::vector<unsigned> register_flip_regs = {0, 1, 2, 3, 6, 7};  // rax..rbx,rsi,rdi
  unsigned register_flip_bit_stride = 8;  ///< test every Nth bit of each register
  int detected_exit_code = 42; ///< exit code the injected fault handler uses
  /// Extra fuel multiplier over the golden bad-input run (faulted runs that
  /// exceed golden_steps * multiplier + slack are classified kHang).
  std::uint64_t fuel_multiplier = 8;
  std::uint64_t fuel_slack = 4096;
  /// Worker threads for the sweep (0 = hardware concurrency). Results are
  /// bit-identical for every thread count.
  unsigned threads = 1;
  /// Campaign order: 1 sweeps single faults (the paper's scenario), 2
  /// additionally sweeps fault *pairs* within `pair_window` — the
  /// multi-fault scenario that defeats duplication-style countermeasures.
  unsigned order = 1;
  /// Order 2: maximum trace distance t2 - t1 between the two faults.
  std::uint64_t pair_window = 8;
  /// Order 2: classify pairs from the order-1 profiles where provably
  /// equivalent instead of simulating them (exact; see sim::EngineConfig).
  bool pair_outcome_reuse = true;
};

struct CampaignResult {
  std::vector<Vulnerability> vulnerabilities;
  std::map<Outcome, std::uint64_t> outcome_counts;
  std::uint64_t total_faults = 0;
  std::uint64_t trace_length = 0;

  /// Order-2 extension: filled only when CampaignConfig::order == 2. The
  /// order-1 fields above are still populated (phase A of the pair sweep).
  std::vector<PairVulnerability> pair_vulnerabilities;
  std::map<Outcome, std::uint64_t> pair_outcome_counts;
  std::uint64_t total_pairs = 0;
  std::uint64_t reused_pairs = 0;  ///< pairs classified without simulation

  [[nodiscard]] std::uint64_t count(Outcome outcome) const {
    const auto it = outcome_counts.find(outcome);
    return it == outcome_counts.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t pair_count(Outcome outcome) const {
    const auto it = pair_outcome_counts.find(outcome);
    return it == pair_outcome_counts.end() ? 0 : it->second;
  }
  /// Distinct static instruction addresses with at least one successful
  /// fault — the paper's "number of vulnerable points".
  [[nodiscard]] std::vector<std::uint64_t> vulnerable_addresses() const;
};

/// Golden (fault-free) references for both inputs. Throws Error{kExecution}
/// if the binary does not show the expected differential behaviour.
struct Oracle {
  emu::RunResult good_reference;
  emu::RunResult bad_reference;
  std::vector<emu::TraceEntry> bad_trace;

  Outcome classify(const emu::RunResult& run, int detected_exit_code) const;
};

Oracle make_oracle(const elf::Image& image, const std::string& good_input,
                   const std::string& bad_input);

CampaignResult run_campaign(const elf::Image& image, const std::string& good_input,
                            const std::string& bad_input,
                            const CampaignConfig& config = {});

}  // namespace r2r::fault
