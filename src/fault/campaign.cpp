#include "fault/campaign.h"

#include <algorithm>

#include "support/error.h"

namespace r2r::fault {

namespace {
using emu::FaultSpec;
using emu::RunConfig;
using emu::RunResult;
using emu::StopReason;
using support::check;
using support::ErrorKind;
}  // namespace

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kNoEffect: return "no-effect";
    case Outcome::kSuccess: return "successful-fault";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
    case Outcome::kDetected: return "detected";
    case Outcome::kOtherBehavior: return "other";
  }
  return "?";
}

std::vector<std::uint64_t> CampaignResult::vulnerable_addresses() const {
  std::vector<std::uint64_t> addresses;
  for (const Vulnerability& v : vulnerabilities) addresses.push_back(v.address);
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
  return addresses;
}

Outcome Oracle::classify(const RunResult& run, int detected_exit_code) const {
  if (run.reason == StopReason::kExited && run.exit_code == detected_exit_code) {
    return Outcome::kDetected;
  }
  if (run.observably_equal(good_reference)) return Outcome::kSuccess;
  if (run.observably_equal(bad_reference)) return Outcome::kNoEffect;
  if (run.reason == StopReason::kCrashed) return Outcome::kCrash;
  if (run.reason == StopReason::kFuelExhausted) return Outcome::kHang;
  return Outcome::kOtherBehavior;
}

Oracle make_oracle(const elf::Image& image, const std::string& good_input,
                   const std::string& bad_input) {
  Oracle oracle;
  RunConfig config;
  oracle.good_reference = emu::run_image(image, good_input, config);
  check(oracle.good_reference.reason == StopReason::kExited, ErrorKind::kExecution,
        "good-input golden run did not exit cleanly: " +
            oracle.good_reference.crash_detail);

  config.record_trace = true;
  RunResult bad = emu::run_image(image, bad_input, config);
  check(bad.reason == StopReason::kExited, ErrorKind::kExecution,
        "bad-input golden run did not exit cleanly: " + bad.crash_detail);
  check(!bad.observably_equal(oracle.good_reference), ErrorKind::kExecution,
        "good and bad inputs are observationally identical; nothing to protect");
  oracle.bad_trace = std::move(bad.trace);
  bad.trace.clear();
  oracle.bad_reference = std::move(bad);
  return oracle;
}

CampaignResult run_campaign(const elf::Image& image, const std::string& good_input,
                            const std::string& bad_input, const CampaignConfig& config) {
  const Oracle oracle = make_oracle(image, good_input, bad_input);
  CampaignResult result;
  result.trace_length = oracle.bad_trace.size();

  RunConfig run_config;
  run_config.fuel =
      oracle.bad_reference.steps * config.fuel_multiplier + config.fuel_slack;

  const auto inject = [&](const FaultSpec& spec, std::uint64_t address) {
    run_config.fault = spec;
    const RunResult run = emu::run_image(image, bad_input, run_config);
    const Outcome outcome = oracle.classify(run, config.detected_exit_code);
    ++result.outcome_counts[outcome];
    ++result.total_faults;
    if (outcome == Outcome::kSuccess) {
      result.vulnerabilities.push_back(Vulnerability{spec, address});
    }
  };

  for (std::uint64_t index = 0; index < oracle.bad_trace.size(); ++index) {
    const emu::TraceEntry& entry = oracle.bad_trace[index];
    if (config.model_skip) {
      FaultSpec spec;
      spec.kind = FaultSpec::Kind::kSkip;
      spec.trace_index = index;
      inject(spec, entry.address);
    }
    if (config.model_bit_flip) {
      const std::uint32_t bits = static_cast<std::uint32_t>(entry.length) * 8;
      for (std::uint32_t bit = 0; bit < bits; ++bit) {
        FaultSpec spec;
        spec.kind = FaultSpec::Kind::kBitFlip;
        spec.trace_index = index;
        spec.bit_offset = bit;
        inject(spec, entry.address);
      }
    }
    if (config.model_register_flip) {
      const unsigned stride =
          config.register_flip_bit_stride == 0 ? 1 : config.register_flip_bit_stride;
      for (const unsigned reg : config.register_flip_regs) {
        for (unsigned bit = 0; bit < 64; bit += stride) {
          FaultSpec spec;
          spec.kind = FaultSpec::Kind::kRegisterBitFlip;
          spec.trace_index = index;
          spec.bit_offset = reg * 64 + bit;
          inject(spec, entry.address);
        }
      }
    }
    if (config.model_flag_flip) {
      for (unsigned flag = 0; flag < 6; ++flag) {
        FaultSpec spec;
        spec.kind = FaultSpec::Kind::kFlagFlip;
        spec.trace_index = index;
        spec.bit_offset = flag;
        inject(spec, entry.address);
      }
    }
  }
  return result;
}

}  // namespace r2r::fault
