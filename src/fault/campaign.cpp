#include "fault/campaign.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace r2r::fault {

std::vector<std::uint64_t> CampaignResult::vulnerable_addresses() const {
  std::vector<std::uint64_t> addresses;
  for (const Vulnerability& v : vulnerabilities) addresses.push_back(v.address);
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
  return addresses;
}

std::uint64_t CampaignResult::strictly_second_order_count() const {
  return sim::strictly_higher_order(vulnerabilities, pair_vulnerabilities).size();
}

Outcome Oracle::classify(const emu::RunResult& run, int detected_exit_code) const {
  return sim::classify(good_reference, bad_reference, run, detected_exit_code);
}

Oracle make_oracle(const elf::Image& image, const std::string& good_input,
                   const std::string& bad_input) {
  sim::References refs = sim::make_references(image, good_input, bad_input);
  Oracle oracle;
  oracle.good_reference = std::move(refs.good_reference);
  oracle.bad_reference = std::move(refs.bad_reference);
  oracle.bad_trace = std::move(refs.bad_trace);
  return oracle;
}

CampaignResult run_campaign(const elf::Image& image, const std::string& good_input,
                            const std::string& bad_input, const CampaignConfig& config) {
  support::check(config.models.order == 1 || config.models.order == 2,
                 support::ErrorKind::kExecution,
                 "campaign order must be 1 (single faults) or 2 (fault pairs)");
  sim::EngineConfig engine_config;
  engine_config.threads = config.threads;
  engine_config.detected_exit_code = config.detected_exit_code;
  engine_config.fuel_multiplier = config.fuel_multiplier;
  engine_config.fuel_slack = config.fuel_slack;
  engine_config.pair_outcome_reuse = config.pair_outcome_reuse;
  const sim::Engine engine(image, good_input, bad_input, engine_config);

  // The models go to the engine verbatim — CampaignConfig embeds the
  // engine's own struct precisely so there is no per-field copy to drift.
  CampaignResult result;
  if (config.models.order >= 2) {
    sim::PairCampaignResult swept = engine.run_pairs(config.models);
    result.vulnerabilities = std::move(swept.order1.vulnerabilities);
    result.outcome_counts = std::move(swept.order1.outcome_counts);
    result.total_faults = swept.order1.total_faults;
    result.trace_length = swept.trace_length;
    result.pair_vulnerabilities = std::move(swept.vulnerabilities);
    result.pair_outcome_counts = std::move(swept.outcome_counts);
    result.total_pairs = swept.total_pairs;
    result.reused_pairs = swept.reused_pairs();
    return result;
  }

  sim::CampaignResult swept = engine.run(config.models);
  result.vulnerabilities = std::move(swept.vulnerabilities);
  result.outcome_counts = std::move(swept.outcome_counts);
  result.total_faults = swept.total_faults;
  result.trace_length = swept.trace_length;
  return result;
}

}  // namespace r2r::fault
