#include "fault/campaign.h"

#include <algorithm>
#include <utility>

#include "support/error.h"
#include "support/strings.h"

namespace r2r::fault {

std::vector<std::uint64_t> CampaignResult::vulnerable_addresses() const {
  std::vector<std::uint64_t> addresses;
  for (const Vulnerability& v : vulnerabilities) addresses.push_back(v.address);
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
  return addresses;
}

std::uint64_t CampaignResult::strictly_second_order_count() const {
  return sim::strictly_higher_order(vulnerabilities, pair_vulnerabilities).size();
}

std::uint64_t CampaignResult::successful_lower_tuples() const {
  std::uint64_t successful = 0;
  for (std::size_t i = 0; i + 1 < tuple_levels.size(); ++i) {
    successful += tuple_levels[i].successful;
  }
  return successful;
}

std::uint64_t CampaignResult::strictly_order_k_count() const {
  return strictly_order_k(vulnerabilities, tuple_vulnerabilities).size();
}

std::string CampaignResult::to_json() const {
  const auto outcome_map = [](const std::map<Outcome, std::uint64_t>& counts) {
    std::string json = "{";
    bool first = true;
    for (const auto& [outcome, count] : counts) {
      if (!first) json += ", ";
      first = false;
      json += support::json_quote(to_string(outcome)) + ": " + std::to_string(count);
    }
    return json + "}";
  };

  std::string json = "{\n";
  json += "  \"trace_length\": " + std::to_string(trace_length) + ",\n";
  json += "  \"total_faults\": " + std::to_string(total_faults) + ",\n";
  json += "  \"successful_faults\": " + std::to_string(count(Outcome::kSuccess)) + ",\n";
  json += "  \"outcomes\": " + outcome_map(outcome_counts) + ",\n";
  json += "  \"vulnerable_addresses\": [";
  bool first = true;
  for (const std::uint64_t address : vulnerable_addresses()) {
    if (!first) json += ", ";
    first = false;
    json += support::json_quote(support::hex_string(address));
  }
  json += "]";
  if (total_pairs != 0 || !pair_vulnerabilities.empty()) {
    json += ",\n  \"total_pairs\": " + std::to_string(total_pairs) + ",\n";
    json += "  \"successful_pairs\": " + std::to_string(pair_count(Outcome::kSuccess)) +
            ",\n";
    json += "  \"reused_pairs\": " + std::to_string(reused_pairs) + ",\n";
    json += "  \"strictly_second_order\": " + std::to_string(strictly_second_order_count()) +
            ",\n";
    json += "  \"pair_outcomes\": " + outcome_map(pair_outcome_counts) + ",\n";
    json += "  \"pair_patch_sites\": [";
    first = true;
    for (const std::uint64_t site :
         pair_patch_sites(sim::strictly_higher_order(vulnerabilities, pair_vulnerabilities))) {
      if (!first) json += ", ";
      first = false;
      json += support::json_quote(support::hex_string(site));
    }
    json += "]";
  }
  if (tuple_order != 0) {
    json += ",\n  \"tuple_order\": " + std::to_string(tuple_order) + ",\n";
    json += "  \"total_tuples\": " + std::to_string(total_tuples) + ",\n";
    json += "  \"enumerated_tuples\": " + std::to_string(enumerated_tuples) + ",\n";
    json += "  \"successful_tuples\": " + std::to_string(tuple_count(Outcome::kSuccess)) +
            ",\n";
    json += "  \"reused_tuples\": " + std::to_string(reused_tuples) + ",\n";
    json += std::string("  \"tuples_sampled\": ") + (tuples_sampled ? "true" : "false") +
            ",\n";
    json += "  \"strictly_order_k\": " + std::to_string(strictly_order_k_count()) + ",\n";
    json += "  \"successful_lower_tuples\": " + std::to_string(successful_lower_tuples()) +
            ",\n";
    json += "  \"tuple_levels\": [";
    first = true;
    for (const TupleLevelSummary& level : tuple_levels) {
      if (!first) json += ", ";
      first = false;
      json += "{\"order\": " + std::to_string(level.order) +
              ", \"classified\": " + std::to_string(level.classified) +
              ", \"successful\": " + std::to_string(level.successful) + "}";
    }
    json += "],\n";
    json += "  \"tuple_outcomes\": " + outcome_map(tuple_outcome_counts) + ",\n";
    json += "  \"tuple_patch_sites\": [";
    first = true;
    for (const std::uint64_t site :
         tuple_patch_sites(strictly_order_k(vulnerabilities, tuple_vulnerabilities))) {
      if (!first) json += ", ";
      first = false;
      json += support::json_quote(support::hex_string(site));
    }
    json += "]";
  }
  json += "\n}\n";
  return json;
}

Outcome Oracle::classify(const emu::RunResult& run, int detected_exit_code) const {
  return sim::classify(good_reference, bad_reference, run, detected_exit_code);
}

Oracle make_oracle(const elf::Image& image, const std::string& good_input,
                   const std::string& bad_input) {
  sim::References refs = sim::make_references(image, good_input, bad_input);
  Oracle oracle;
  oracle.good_reference = std::move(refs.good_reference);
  oracle.bad_reference = std::move(refs.bad_reference);
  oracle.bad_trace = std::move(refs.bad_trace);
  return oracle;
}

CampaignResult run_campaign(const elf::Image& image, const std::string& good_input,
                            const std::string& bad_input, const CampaignConfig& config) {
  support::check(config.models.order >= 1 && config.models.order <= kMaxCampaignOrder,
                 support::ErrorKind::kExecution,
                 "campaign order must be 1 (single faults), 2 (fault pairs), or 3.." +
                     std::to_string(kMaxCampaignOrder) + " (fault k-tuples)");
  sim::EngineConfig engine_config;
  engine_config.threads = config.threads;
  engine_config.detected_exit_code = config.detected_exit_code;
  engine_config.fuel_multiplier = config.fuel_multiplier;
  engine_config.fuel_slack = config.fuel_slack;
  engine_config.pair_outcome_reuse = config.pair_outcome_reuse;
  const sim::Engine engine(image, good_input, bad_input, engine_config);

  // The models go to the engine verbatim — CampaignConfig embeds the
  // engine's own struct precisely so there is no per-field copy to drift.
  CampaignResult result;
  if (config.models.order >= 3) {
    sim::TupleCampaignResult swept = engine.run_tuples(config.models);
    result.vulnerabilities = std::move(swept.order1.vulnerabilities);
    result.outcome_counts = std::move(swept.order1.outcome_counts);
    result.total_faults = swept.order1.total_faults;
    result.trace_length = swept.trace_length;
    result.tuple_order = swept.order;
    result.tuple_vulnerabilities = std::move(swept.vulnerabilities);
    result.tuple_outcome_counts = std::move(swept.outcome_counts);
    result.total_tuples = swept.total_tuples;
    result.enumerated_tuples = swept.enumerated_tuples;
    result.reused_tuples = swept.reused_tuples();
    result.tuples_sampled = swept.sampled;
    result.tuple_levels = std::move(swept.levels);
    return result;
  }
  if (config.models.order >= 2) {
    sim::PairCampaignResult swept = engine.run_pairs(config.models);
    result.vulnerabilities = std::move(swept.order1.vulnerabilities);
    result.outcome_counts = std::move(swept.order1.outcome_counts);
    result.total_faults = swept.order1.total_faults;
    result.trace_length = swept.trace_length;
    result.pair_vulnerabilities = std::move(swept.vulnerabilities);
    result.pair_outcome_counts = std::move(swept.outcome_counts);
    result.total_pairs = swept.total_pairs;
    result.reused_pairs = swept.reused_pairs();
    return result;
  }

  sim::CampaignResult swept = engine.run(config.models);
  result.vulnerabilities = std::move(swept.vulnerabilities);
  result.outcome_counts = std::move(swept.outcome_counts);
  result.total_faults = swept.total_faults;
  result.trace_length = swept.trace_length;
  return result;
}

}  // namespace r2r::fault
