#include "lower/lower.h"

#include <map>
#include <set>

#include "bir/assemble.h"
#include "isa/target.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"

namespace r2r::lower {

namespace {

using ir::Opcode;
using ir::Pred;
using ir::Type;
using ir::Value;
using isa::Cond;
using isa::Instruction;
using isa::Mnemonic;
using isa::Reg;
using isa::Width;
using support::check;
using support::ErrorKind;
using support::fits_int32;

Cond cond_for(Pred pred) {
  switch (pred) {
    case Pred::kEq: return Cond::e;
    case Pred::kNe: return Cond::ne;
    case Pred::kUlt: return Cond::b;
    case Pred::kUle: return Cond::be;
    case Pred::kUgt: return Cond::a;
    case Pred::kUge: return Cond::ae;
    case Pred::kSlt: return Cond::l;
    case Pred::kSle: return Cond::le;
    case Pred::kSgt: return Cond::g;
    case Pred::kSge: return Cond::ge;
  }
  return Cond::e;
}

Mnemonic mnemonic_for(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd: return Mnemonic::kAdd;
    case Opcode::kSub: return Mnemonic::kSub;
    case Opcode::kMul: return Mnemonic::kImul;
    case Opcode::kAnd: return Mnemonic::kAnd;
    case Opcode::kOr: return Mnemonic::kOr;
    case Opcode::kXor: return Mnemonic::kXor;
    case Opcode::kShl: return Mnemonic::kShl;
    case Opcode::kLShr: return Mnemonic::kShr;
    case Opcode::kAShr: return Mnemonic::kSar;
    default: support::fail(ErrorKind::kLower, "not a binary opcode");
  }
}

/// Allocatable pool; r11 is a reserved scratch (wide case constants),
/// rbx/rbp/r12..r15 and rsp stay untouched.
constexpr Reg kPool[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::rsi,
                         Reg::rdi, Reg::r8,  Reg::r9,  Reg::r10};
constexpr Reg kScratch = Reg::r11;

/// Code generator for one IR function.
///
/// Register model: block-local register cache over an on-demand spill
/// frame. Values used across blocks are stored to their frame slot at
/// definition; block-local values live in registers and only get a slot if
/// they must survive an eviction or a call. Dirty tracking keeps the store
/// traffic down to what is actually needed.
class FunctionLowerer {
 public:
  FunctionLowerer(const ir::Function& fn, bir::Module& out, const LowerOptions& options)
      : fn_(fn), out_(out), options_(options),
        caps_(isa::target(options.arch).lower_caps()) {}

  void lower() {
    analyze_uses();

    // Lower all blocks first; the frame size is only known afterwards, so
    // prologue/epilogue immediates are patched at the end.
    std::vector<std::pair<std::string, std::vector<Instruction>>> lowered;
    for (const auto& block_ptr : fn_.blocks) {
      const ir::BasicBlock& block = *block_ptr;
      code_.clear();
      cache_reset();
      remaining_uses_ = block_use_counts_.at(&block);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const std::size_t fused = try_fuse_compare_branch(block, i);
        if (fused > 0) {
          for (std::size_t k = i; k < i + fused; ++k) {
            consume_operands(*block.instrs[k]);
          }
          i += fused - 1;
          continue;
        }
        lower_instr(*block.instrs[i]);
        consume_operands(*block.instrs[i]);
      }
      lowered.emplace_back(block_label(block), std::move(code_));
      code_.clear();
    }

    const std::int64_t frame =
        static_cast<std::int64_t>((next_slot_ + 15) & ~std::uint64_t{15});
    // Prologue block carries the function symbol; branches back to the
    // entry basic block use its internal label and skip the sub.
    std::vector<Instruction> prologue;
    if (frame > 0) {
      check(frame <= caps_.max_alu_imm, ErrorKind::kLower,
            "stack frame exceeds the target's immediate range");
      prologue.push_back(caps_.sub_immediate
                             ? isa::sub(Reg::rsp, isa::imm(frame), natural())
                             : isa::add(Reg::rsp, isa::imm(-frame), natural()));
    }
    if (prologue.empty()) prologue.push_back(isa::nop());
    out_.append_block(fn_.name(), std::move(prologue));
    for (auto& [label, instructions] : lowered) {
      // Patch epilogue placeholders now that the frame size is known.
      for (Instruction& instr : instructions) {
        if (instr.mnemonic == Mnemonic::kAdd && instr.arity() == 2 &&
            isa::is_reg(instr.op(0)) && std::get<Reg>(instr.op(0)) == Reg::rsp &&
            isa::is_imm(instr.op(1)) &&
            std::get<isa::ImmOperand>(instr.op(1)).label == kEpilogueTag) {
          instr.operands[1] = isa::ImmOperand{frame, {}};
        }
      }
      if (frame == 0) {
        // Drop now-trivial `add rsp, 0` epilogues.
        std::erase_if(instructions, [](const Instruction& instr) {
          return instr.mnemonic == Mnemonic::kAdd && instr.arity() == 2 &&
                 isa::is_reg(instr.op(0)) && std::get<Reg>(instr.op(0)) == Reg::rsp &&
                 isa::is_imm(instr.op(1)) &&
                 std::get<isa::ImmOperand>(instr.op(1)).value == 0;
        });
      }
      out_.append_block(label, std::move(instructions));
    }
  }

  [[nodiscard]] std::string block_label(const ir::BasicBlock& block) const {
    return fn_.name() + "." + block.name();
  }

 private:
  static constexpr const char* kEpilogueTag = ".r2r_frame";

  // ---- target legalization helpers -------------------------------------------

  [[nodiscard]] Width natural() const noexcept { return caps_.natural_width; }

  /// Machine operation width for a value of IR type `type`: sub-word types
  /// keep their size, full-word (i64) arithmetic runs at the register width.
  [[nodiscard]] Width width_for(Type type) const noexcept {
    if (type == Type::kI8 || type == Type::kI1) return Width::b8;
    if (type == Type::kI32) return Width::b32;
    return caps_.natural_width;
  }

  [[nodiscard]] bool fits_alu_imm(std::int64_t value) const noexcept {
    return value >= caps_.min_alu_imm && value <= caps_.max_alu_imm;
  }

  /// Canonicalizes a constant for materialization: 32-bit machines hold the
  /// low word only, so wide constants are pre-masked to their u32 image
  /// (small immediates stay signed so they pick the short encoding).
  [[nodiscard]] std::int64_t legal_constant(std::int64_t raw) const noexcept {
    if (caps_.natural_width == Width::b32 && !fits_alu_imm(raw)) {
      return static_cast<std::int64_t>(static_cast<std::uint32_t>(raw));
    }
    return raw;
  }

  /// Truncates `dst` (holding a full-width computation) to `type`. A no-op
  /// when the type already fills the machine word.
  void emit_mask(Reg dst, Type type) {
    const unsigned bits = ir::type_bits(type);
    if (bits >= isa::width_bits(natural())) return;
    const auto mask = static_cast<std::int64_t>((std::uint64_t{1} << bits) - 1);
    if (fits_alu_imm(mask)) {
      code_.push_back(isa::and_(dst, isa::imm(mask), natural()));
    } else {
      code_.push_back(isa::mov(kScratch, isa::imm(legal_constant(mask)), natural()));
      code_.push_back(isa::and_(dst, kScratch, natural()));
    }
  }

  // ---- use analysis -----------------------------------------------------------

  void analyze_uses() {
    std::map<const Value*, const ir::BasicBlock*> def_block;
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block->instrs) def_block[instr.get()] = block.get();
    }
    for (const auto& block : fn_.blocks) {
      auto& counts = block_use_counts_[block.get()];
      for (const auto& instr : block->instrs) {
        for (const Value* op : instr->operands) {
          if (op->kind() != Value::Kind::kInstr) continue;
          ++counts[op];
          if (def_block.at(op) != block.get()) cross_block_.insert(op);
        }
      }
    }
  }

  void consume_operands(const ir::Instr& instr) {
    for (const Value* op : instr.operands) {
      if (op->kind() != Value::Kind::kInstr) continue;
      auto it = remaining_uses_.find(op);
      if (it != remaining_uses_.end() && it->second > 0) --it->second;
    }
  }

  [[nodiscard]] unsigned remaining(const Value* value) const {
    const auto it = remaining_uses_.find(value);
    return it == remaining_uses_.end() ? 0 : it->second;
  }

  [[nodiscard]] unsigned occurrences(const ir::Instr& instr, const Value* value) const {
    unsigned count = 0;
    for (const Value* op : instr.operands) {
      if (op == value) ++count;
    }
    return count;
  }

  // ---- frame slots ---------------------------------------------------------------

  std::int64_t slot_of(const Value* value) {
    const auto it = slots_.find(value);
    if (it != slots_.end()) return it->second;
    const auto slot = static_cast<std::int64_t>(next_slot_);
    next_slot_ += 8;
    slots_[value] = slot;
    return slot;
  }

  [[nodiscard]] isa::Operand slot_operand(const Value* value) {
    return isa::mem(Reg::rsp, slot_of(value));
  }

  // ---- register cache --------------------------------------------------------------

  struct CacheEntry {
    const Value* value = nullptr;
    bool dirty = false;
  };

  void cache_reset() {
    cache_.clear();
    where_.clear();
  }

  void unbind(Reg reg) {
    const auto it = cache_.find(reg);
    if (it != cache_.end()) {
      where_.erase(it->second.value);
      cache_.erase(it);
    }
  }

  void bind(Reg reg, const Value* value, bool dirty) {
    unbind(reg);
    if (const auto it = where_.find(value); it != where_.end()) {
      cache_.erase(it->second);
      where_.erase(it);
    }
    cache_[reg] = CacheEntry{value, dirty};
    where_[value] = reg;
  }

  /// Spills `reg` if its value may still be needed and is not backed by a
  /// current slot.
  void evict(Reg reg) {
    const auto it = cache_.find(reg);
    if (it == cache_.end()) return;
    const CacheEntry entry = it->second;
    const bool needed = entry.dirty && (remaining(entry.value) > 0);
    if (needed) {
      code_.push_back(isa::mov(slot_operand(entry.value), reg, natural()));
    }
    where_.erase(entry.value);
    cache_.erase(reg);
  }

  Reg alloc_reg(const std::set<Reg>& pinned) {
    for (const Reg reg : kPool) {
      if (!pinned.contains(reg) && !cache_.contains(reg)) return reg;
    }
    // Prefer evicting a clean or dead value.
    for (const Reg reg : kPool) {
      if (pinned.contains(reg)) continue;
      const CacheEntry& entry = cache_.at(reg);
      if (!entry.dirty || remaining(entry.value) == 0) {
        evict(reg);
        return reg;
      }
    }
    for (const Reg reg : kPool) {
      if (!pinned.contains(reg)) {
        evict(reg);
        return reg;
      }
    }
    support::fail(ErrorKind::kLower, "register pool exhausted");
  }

  /// Flushes every dirty, still-needed value (before calls) and clears the
  /// cache. "Still needed" means uses remain in this block or anywhere
  /// else (cross-block values are always stored at definition, so they are
  /// never dirty here).
  void flush_and_clear() {
    for (auto& [reg, entry] : cache_) {
      if (entry.dirty && remaining(entry.value) > 0) {
        code_.push_back(isa::mov(slot_operand(entry.value), reg, natural()));
      }
    }
    cache_reset();
  }

  /// Ensures an instruction value can be reloaded after the cache is
  /// cleared (i.e. it has an up-to-date slot).
  void ensure_slot_current(const Value* value) {
    if (value->kind() != Value::Kind::kInstr) return;
    const auto it = where_.find(value);
    if (it == where_.end()) return;  // already only in its slot
    CacheEntry& entry = cache_.at(it->second);
    if (entry.dirty) {
      code_.push_back(isa::mov(slot_operand(value), it->second, natural()));
      entry.dirty = false;
    }
  }

  Reg value_to_reg(const Value* value, std::set<Reg>& pinned) {
    if (const auto it = where_.find(value); it != where_.end()) {
      pinned.insert(it->second);
      return it->second;
    }
    const Reg reg = alloc_reg(pinned);
    switch (value->kind()) {
      case Value::Kind::kConstant: {
        const auto raw =
            static_cast<std::int64_t>(static_cast<const ir::Constant*>(value)->value());
        code_.push_back(isa::mov(reg, isa::imm(legal_constant(raw)), natural()));
        break;
      }
      case Value::Kind::kGlobal: {
        const auto* global = static_cast<const ir::GlobalVariable*>(value);
        code_.push_back(isa::mov(
            reg, isa::imm(static_cast<std::int64_t>(global->address)), natural()));
        break;
      }
      case Value::Kind::kInstr:
        check(slots_.contains(value), ErrorKind::kLower,
              "use of a value that was never defined or spilled");
        code_.push_back(isa::mov(reg, slot_operand(value), natural()));
        break;
    }
    bind(reg, value, /*dirty=*/false);
    pinned.insert(reg);
    return reg;
  }

  isa::Operand value_operand(const Value* value, std::set<Reg>& pinned) {
    if (value->kind() == Value::Kind::kConstant) {
      const auto raw =
          static_cast<std::int64_t>(static_cast<const ir::Constant*>(value)->value());
      if (fits_alu_imm(raw)) return isa::imm(raw);
    }
    return value_to_reg(value, pinned);
  }

  /// Records the definition of `instr` living in `reg`. Cross-block values
  /// are stored through immediately; block-local ones stay register-only
  /// until an eviction forces a spill.
  void define(const ir::Instr* instr, Reg reg) {
    const bool crosses = cross_block_.contains(instr);
    if (crosses) {
      code_.push_back(isa::mov(slot_operand(instr), reg, natural()));
    }
    bind(reg, instr, /*dirty=*/!crosses);
  }

  /// Picks the destination register for a computation consuming `a`:
  /// reuses a's register when this is its final use (saves the copy).
  Reg dest_for(const ir::Instr& instr, const Value* a, Reg a_reg,
               std::set<Reg>& pinned) {
    if (a->kind() == Value::Kind::kInstr && remaining(a) == occurrences(instr, a) &&
        occurrences(instr, a) == 1) {
      // a dies here; steal its register. Its slot (if any) stays valid.
      unbind(a_reg);
      pinned.insert(a_reg);
      return a_reg;
    }
    return alloc_reg(pinned);
  }

  isa::Operand address_operand(const Value* value, std::set<Reg>& pinned) {
    if (caps_.absolute_addressing) {
      if (value->kind() == Value::Kind::kGlobal) {
        const auto* global = static_cast<const ir::GlobalVariable*>(value);
        return isa::mem_abs(static_cast<std::int64_t>(global->address));
      }
      if (value->kind() == Value::Kind::kConstant) {
        const auto raw =
            static_cast<std::int64_t>(static_cast<const ir::Constant*>(value)->value());
        if (fits_int32(raw)) return isa::mem_abs(raw);
      }
    }
    // No absolute forms: materialize the address into a pool register
    // (globals cache well — flag slots are hit on almost every instruction).
    return isa::mem(value_to_reg(value, pinned), 0);
  }

  // ---- compare/branch fusion -----------------------------------------------------

  /// Recognizes [icmp][condbr] and [icmp][xor cond,true][condbr] patterns
  /// at position `i` where the intermediate values have no other uses, and
  /// emits a native cmp + jcc pair. Returns the number of IR instructions
  /// consumed (0 = no fusion).
  std::size_t try_fuse_compare_branch(const ir::BasicBlock& block, std::size_t i) {
    const ir::Instr* icmp = block.instrs[i].get();
    if (icmp->opcode() != Opcode::kICmp) return 0;

    const auto single_use_here = [this](const ir::Instr* value) {
      return !cross_block_.contains(value) && remaining(value) == 1;
    };

    // Direct: icmp; condbr.
    if (i + 1 < block.instrs.size()) {
      const ir::Instr* next = block.instrs[i + 1].get();
      if (next->opcode() == Opcode::kCondBr && next->operands[0] == icmp &&
          single_use_here(icmp)) {
        emit_fused(*icmp, /*inverted=*/false, *next);
        return 2;
      }
      // Inverted: icmp; xor icmp,true; condbr.
      if (i + 2 < block.instrs.size() && next->opcode() == Opcode::kXor &&
          next->type() == Type::kI1 && single_use_here(icmp) &&
          single_use_here(next)) {
        const bool wraps_icmp =
            (next->operands[0] == icmp &&
             next->operands[1]->kind() == Value::Kind::kConstant &&
             static_cast<const ir::Constant*>(next->operands[1])->value() == 1) ||
            (next->operands[1] == icmp &&
             next->operands[0]->kind() == Value::Kind::kConstant &&
             static_cast<const ir::Constant*>(next->operands[0])->value() == 1);
        const ir::Instr* branch = block.instrs[i + 2].get();
        if (wraps_icmp && branch->opcode() == Opcode::kCondBr &&
            branch->operands[0] == next) {
          emit_fused(*icmp, /*inverted=*/true, *branch);
          return 3;
        }
      }
    }
    return 0;
  }

  void emit_fused(const ir::Instr& icmp, bool inverted, const ir::Instr& branch) {
    std::set<Reg> pinned;
    const Value* a = icmp.operands[0];
    const Value* b = icmp.operands[1];
    const Width width = width_for(a->type());
    const Reg a_reg = value_to_reg(a, pinned);
    const isa::Operand b_op = value_operand(b, pinned);
    code_.push_back(isa::cmp(a_reg, b_op, width));
    Cond cond = cond_for(icmp.pred);
    if (inverted) cond = isa::invert(cond);
    code_.push_back(isa::jcc(cond, target_label(branch.targets[0])));
    code_.push_back(isa::jmp(target_label(branch.targets[1])));
    emit_fallthrough_guard();
  }

  /// A ud2 after every block-terminating jump: a skip fault on the jump
  /// then traps instead of silently falling into the next block — which
  /// would take a control-flow edge that bypasses the checksum validation
  /// blocks the hardening pass inserted.
  void emit_fallthrough_guard() { code_.push_back(isa::make0(Mnemonic::kUd2)); }

  // ---- per-instruction lowering -------------------------------------------------

  void lower_instr(const ir::Instr& instr) {
    switch (instr.opcode()) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr:
        lower_binary(instr);
        return;
      case Opcode::kICmp:
        lower_icmp(instr);
        return;
      case Opcode::kZExt: {
        // Values are kept zero-extended canonically; zext is a register
        // alias unless the source value is still needed.
        std::set<Reg> pinned;
        const Reg src = value_to_reg(instr.operands[0], pinned);
        const Reg dst = dest_for(instr, instr.operands[0], src, pinned);
        if (dst != src) code_.push_back(isa::mov(dst, src, natural()));
        define(&instr, dst);
        return;
      }
      case Opcode::kTrunc: {
        std::set<Reg> pinned;
        const Reg src = value_to_reg(instr.operands[0], pinned);
        const Reg dst = dest_for(instr, instr.operands[0], src, pinned);
        if (dst != src) code_.push_back(isa::mov(dst, src, natural()));
        emit_mask(dst, instr.type());
        define(&instr, dst);
        return;
      }
      case Opcode::kSExt: {
        std::set<Reg> pinned;
        const Type src_type = instr.operands[0]->type();
        const Reg src = value_to_reg(instr.operands[0], pinned);
        const Reg dst = dest_for(instr, instr.operands[0], src, pinned);
        if (src_type == Type::kI8) {
          code_.push_back(isa::make2(Mnemonic::kMovsx, dst, src, natural()));
        } else if (src_type == Type::kI32 && natural() == Width::b32) {
          // The register already holds the 32-bit image; widening to the
          // machine word is the identity.
          if (dst != src) code_.push_back(isa::mov(dst, src, natural()));
        } else {
          support::fail(ErrorKind::kLower, "unsupported sext source type");
        }
        define(&instr, dst);
        return;
      }
      case Opcode::kSelect: {
        std::set<Reg> pinned;
        const Reg cond = value_to_reg(instr.operands[0], pinned);
        const Reg if_true = value_to_reg(instr.operands[1], pinned);
        if (caps_.has_cmov) {
          const isa::Operand if_false = value_operand(instr.operands[2], pinned);
          const Reg dst = alloc_reg(pinned);
          code_.push_back(isa::mov(dst, if_false, natural()));
          code_.push_back(isa::test(cond, cond, natural()));
          Instruction cmov = isa::make2(Mnemonic::kCmovcc, dst, if_true, natural());
          cmov.cond = Cond::ne;
          code_.push_back(cmov);
          define(&instr, dst);
          return;
        }
        // Branch-free mask select: dst = ((t ^ f) & -cond) ^ f. cond is a
        // canonical i1 (0/1), so its negation is the all-ones/all-zeros mask.
        const Reg if_false = value_to_reg(instr.operands[2], pinned);
        const Reg dst = alloc_reg(pinned);
        code_.push_back(isa::mov(kScratch, if_true, natural()));
        code_.push_back(isa::xor_(kScratch, if_false, natural()));
        code_.push_back(isa::mov(dst, cond, natural()));
        code_.push_back(isa::make1(Mnemonic::kNeg, dst, natural()));
        code_.push_back(isa::and_(dst, kScratch, natural()));
        code_.push_back(isa::xor_(dst, if_false, natural()));
        define(&instr, dst);
        return;
      }
      case Opcode::kLoad: {
        std::set<Reg> pinned;
        const isa::Operand address = address_operand(instr.operands[0], pinned);
        const Reg dst = alloc_reg(pinned);
        if (instr.type() == Type::kI8) {
          code_.push_back(isa::movzx(dst, address, natural()));
        } else {
          code_.push_back(isa::mov(dst, address, width_for(instr.type())));
        }
        define(&instr, dst);
        return;
      }
      case Opcode::kStore: {
        std::set<Reg> pinned;
        const Value* value = instr.operands[0];
        const isa::Operand address = address_operand(instr.operands[1], pinned);
        const Width width = width_for(value->type());
        if (value->kind() == Value::Kind::kConstant && caps_.store_immediate) {
          const auto raw =
              static_cast<std::int64_t>(static_cast<const ir::Constant*>(value)->value());
          if (width == Width::b8 || fits_int32(raw)) {
            code_.push_back(isa::mov(address, isa::imm(raw), width));
            return;
          }
        }
        const Reg reg = value_to_reg(value, pinned);
        code_.push_back(isa::mov(address, reg, width));
        return;
      }
      case Opcode::kBr:
        flush_and_clear();
        code_.push_back(isa::jmp(target_label(instr.targets[0])));
        emit_fallthrough_guard();
        return;
      case Opcode::kCondBr: {
        std::set<Reg> pinned;
        const Reg cond = value_to_reg(instr.operands[0], pinned);
        code_.push_back(isa::test(cond, cond, natural()));
        code_.push_back(isa::jcc(Cond::ne, target_label(instr.targets[0])));
        code_.push_back(isa::jmp(target_label(instr.targets[1])));
        emit_fallthrough_guard();
        return;
      }
      case Opcode::kSwitch: {
        std::set<Reg> pinned;
        const Reg value = value_to_reg(instr.operands[0], pinned);
        for (std::size_t c = 0; c < instr.case_values.size(); ++c) {
          const auto case_value =
              legal_constant(static_cast<std::int64_t>(instr.case_values[c]));
          if (fits_alu_imm(case_value)) {
            code_.push_back(isa::cmp(value, isa::imm(case_value), natural()));
          } else {
            code_.push_back(isa::mov(kScratch, isa::imm(case_value), natural()));
            code_.push_back(isa::cmp(value, kScratch, natural()));
          }
          code_.push_back(isa::jcc(Cond::e, target_label(instr.targets[c + 1])));
        }
        code_.push_back(isa::jmp(target_label(instr.targets[0])));
        emit_fallthrough_guard();
        return;
      }
      case Opcode::kRet: {
        Instruction epilogue =
            isa::add(Reg::rsp, isa::ImmOperand{0, kEpilogueTag}, natural());
        code_.push_back(std::move(epilogue));
        code_.push_back(isa::ret());
        return;
      }
      case Opcode::kUnreachable:
        code_.push_back(isa::make0(Mnemonic::kUd2));
        return;
      case Opcode::kCall:
        lower_call(instr);
        return;
    }
  }

  void lower_binary(const ir::Instr& instr) {
    std::set<Reg> pinned;
    const Value* a = instr.operands[0];
    const Value* b = instr.operands[1];
    const bool is_shift = instr.opcode() == Opcode::kShl ||
                          instr.opcode() == Opcode::kLShr ||
                          instr.opcode() == Opcode::kAShr;
    if (is_shift) {
      check(b->kind() == Value::Kind::kConstant, ErrorKind::kLower,
            "variable shift counts are not generated by the lifter/passes");
    }
    if (instr.opcode() == Opcode::kMul) {
      check(caps_.has_mul, ErrorKind::kLower,
            "this target has no multiply (passes must not synthesize mul)");
    }

    const Reg a_reg = value_to_reg(a, pinned);
    isa::Operand b_op;
    bool negated_sub_imm = false;
    if (is_shift) {
      const auto count = static_cast<const ir::Constant*>(b)->value() & 63;
      check(count < isa::width_bits(natural()), ErrorKind::kLower,
            "shift count exceeds the target word size");
      b_op = isa::imm(static_cast<std::int64_t>(count));
    } else if (instr.opcode() == Opcode::kMul) {
      // Two-operand imul has no immediate form; force a register.
      b_op = value_to_reg(b, pinned);
    } else {
      b_op = value_operand(b, pinned);
      if (instr.opcode() == Opcode::kSub && !caps_.sub_immediate &&
          isa::is_imm(b_op)) {
        // No subtract-immediate on this target: add the negation, or fall
        // back to a register when the negation leaves the immediate range.
        const std::int64_t negated = -std::get<isa::ImmOperand>(b_op).value;
        if (fits_alu_imm(negated)) {
          b_op = isa::imm(negated);
          negated_sub_imm = true;
        } else {
          b_op = value_to_reg(b, pinned);
        }
      }
    }
    const Reg dst = dest_for(instr, a, a_reg, pinned);
    if (dst != a_reg) code_.push_back(isa::mov(dst, a_reg, natural()));
    if (instr.opcode() == Opcode::kXor && isa::is_imm(b_op) &&
        std::get<isa::ImmOperand>(b_op).value == -1) {
      // xor with all-ones is complement; rv32i only spells it as not.
      code_.push_back(isa::make1(Mnemonic::kNot, dst, natural()));
    } else {
      code_.push_back(isa::make2(
          negated_sub_imm ? Mnemonic::kAdd : mnemonic_for(instr.opcode()), dst,
          std::move(b_op), natural()));
    }
    emit_mask(dst, instr.type());
    define(&instr, dst);
  }

  void lower_icmp(const ir::Instr& instr) {
    std::set<Reg> pinned;
    const Value* a = instr.operands[0];
    const Value* b = instr.operands[1];
    const Width width = width_for(a->type());
    const Reg a_reg = value_to_reg(a, pinned);
    const isa::Operand b_op = value_operand(b, pinned);
    code_.push_back(isa::cmp(a_reg, b_op, width));
    const Reg dst = alloc_reg(pinned);
    code_.push_back(isa::setcc(cond_for(instr.pred), dst));
    code_.push_back(isa::movzx(dst, dst, natural()));
    define(&instr, dst);
  }

  void lower_call(const ir::Instr& instr) {
    const ir::Function& callee = *instr.callee;
    if (callee.is_intrinsic() && callee.name() == ir::kTrapIntrinsic) {
      code_.push_back(isa::mov(Reg::rax, isa::imm(60), natural()));
      code_.push_back(isa::mov(Reg::rdi, isa::imm(options_.trap_exit_code), natural()));
      code_.push_back(isa::syscall_());
      cache_reset();  // never returns; nothing to preserve
      return;
    }
    if (callee.is_intrinsic() && callee.name() == ir::kSyscallIntrinsic) {
      // Argument values must be reloadable once the cache is dropped.
      for (const Value* arg : instr.operands) ensure_slot_current(arg);
      flush_and_clear();
      const Reg abi[4] = {Reg::rax, Reg::rdi, Reg::rsi, Reg::rdx};
      for (int i = 0; i < 4; ++i) {
        const Value* arg = instr.operands[static_cast<std::size_t>(i)];
        switch (arg->kind()) {
          case Value::Kind::kConstant:
            code_.push_back(isa::mov(
                abi[i],
                isa::imm(legal_constant(static_cast<std::int64_t>(
                    static_cast<const ir::Constant*>(arg)->value()))),
                natural()));
            break;
          case Value::Kind::kGlobal:
            code_.push_back(isa::mov(
                abi[i],
                isa::imm(static_cast<std::int64_t>(
                    static_cast<const ir::GlobalVariable*>(arg)->address)),
                natural()));
            break;
          case Value::Kind::kInstr:
            check(slots_.contains(arg), ErrorKind::kLower,
                  "syscall argument lost before the call");
            code_.push_back(isa::mov(abi[i], slot_operand(arg), natural()));
            break;
        }
      }
      code_.push_back(isa::syscall_());
      define(&instr, Reg::rax);
      return;
    }
    check(!callee.is_intrinsic(), ErrorKind::kLower,
          "unknown intrinsic: " + callee.name());
    flush_and_clear();
    code_.push_back(isa::call(callee.name()));
  }

  [[nodiscard]] std::string target_label(const ir::BasicBlock* block) const {
    return block_label(*block);
  }

  const ir::Function& fn_;
  bir::Module& out_;
  const LowerOptions& options_;
  const isa::LowerCaps& caps_;

  std::map<const Value*, std::int64_t> slots_;
  std::uint64_t next_slot_ = 0;
  std::vector<Instruction> code_;
  std::map<Reg, CacheEntry> cache_;
  std::map<const Value*, Reg> where_;
  std::set<const Value*> cross_block_;
  std::map<const ir::BasicBlock*, std::map<const Value*, unsigned>> block_use_counts_;
  std::map<const Value*, unsigned> remaining_uses_;
};

}  // namespace

bir::Module lower(const ir::Module& module, const std::vector<bir::DataSection>& guest_data,
                  const LowerOptions& options) {
  bir::Module out;
  out.arch = options.arch;
  out.text_base = options.text_base;
  out.entry_symbol = module.entry_function;
  out.globals.push_back(module.entry_function);

  // --- state section -----------------------------------------------------------
  bir::DataSection state;
  state.name = ".r2rstate";
  state.flags = elf::kRead | elf::kWrite;
  state.base = options.state_base;
  for (const auto& global : module.globals) {
    bir::DataBlock block;
    block.labels.push_back(global->name());
    block.bytes = global->init();
    block.bytes.resize(global->size(), 0);
    // Pad so the next global lands on a 16-byte boundary.
    block.bytes.resize((block.bytes.size() + 15) & ~std::size_t{15});
    state.blocks.push_back(std::move(block));
  }
  // Assign addresses exactly as assemble() will lay the blocks out.
  {
    std::uint64_t cursor = state.base;
    for (std::size_t i = 0; i < module.globals.size(); ++i) {
      module.globals[i]->address = cursor;
      cursor += state.blocks[i].bytes.size();
    }
  }
  if (!state.blocks.empty()) out.data_sections.push_back(std::move(state));
  for (const auto& section : guest_data) out.data_sections.push_back(section);

  // --- functions -----------------------------------------------------------------
  for (const auto& fn : module.functions) {
    if (fn->is_intrinsic()) continue;
    FunctionLowerer lowerer(*fn, out, options);
    lowerer.lower();
  }
  return out;
}

elf::Image lower_to_image(const ir::Module& module,
                          const std::vector<bir::DataSection>& guest_data,
                          const LowerOptions& options) {
  obs::Span span("lower.lower");
  bir::Module lowered = lower(module, guest_data, options);
  return bir::assemble(lowered);
}

}  // namespace r2r::lower
