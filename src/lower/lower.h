// r2r::lower — IR -> subset-ISA code generation (the llc-equivalent step of
// the Hybrid approach, Section IV-C.3).
//
// Code generation model:
//  * every value-producing IR instruction owns an 8-byte frame slot;
//    definitions are stored through to their slot (the slot is always
//    current), and a per-block register cache avoids reloads;
//  * calls and syscalls invalidate the cache (caller-saved world);
//  * module globals live in a dedicated ".r2rstate" data section at a
//    fixed base, so state accesses lower to absolute addressing;
//  * guest data sections are re-emitted verbatim at their original bases,
//    preserving every concrete address the lifted code computes.
//
// Lowered intrinsics:
//   r2r.syscall(n, a0, a1, a2) -> mov rax/rdi/rsi/rdx + syscall
//   r2r.trap()                 -> exit(42)  (the fault response)
#pragma once

#include "bir/module.h"
#include "elf/image.h"
#include "ir/ir.h"
#include "patch/detected_exit.h"

namespace r2r::lower {

struct LowerOptions {
  isa::Arch arch = isa::Arch::kX64;  ///< code-generation target
  std::uint64_t text_base = 0x400000;
  std::uint64_t state_base = 0x90'0000;  ///< ".r2rstate" section base
  int trap_exit_code = patch::kDetectedExit;
};

/// Lowers `module` into a relocatable binary module; `guest_data` sections
/// are appended unchanged. Global addresses are assigned as a side effect
/// (GlobalVariable::address).
bir::Module lower(const ir::Module& module, const std::vector<bir::DataSection>& guest_data,
                  const LowerOptions& options = {});

/// lower() + assemble() in one step.
elf::Image lower_to_image(const ir::Module& module,
                          const std::vector<bir::DataSection>& guest_data,
                          const LowerOptions& options = {});

}  // namespace r2r::lower
