// Higher-order fault campaigns (the multi-fault scenario of Boespflug et
// al.): sweep fault *pairs* against pincheck before and after hardening.
//
// The headline: hardening with the paper's duplication patterns (the
// Faulter+Patcher loop) resolves every single skip fault — and the order-2
// sweep still breaks the binary with well-placed fault pairs that no
// order-1 campaign can see. Wholesale instruction duplication (the Hybrid
// >=300% baseline) does not even reach order-1 cleanliness: conditional
// branches cannot be duplicated, so skipping one still succeeds.
//
// The closer: re-running the loop with campaign order 2 — pair sweeps, pair
// -> site attribution, deeper redundancy patterns — drives the residual
// pair count to zero, for a Table-V-style overhead delta the survey prints.
//
// Build: cmake --build build && ./build/double_fault_survey
#include <cstdio>
#include <string>

#include "elf/image.h"
#include "guests/guests.h"
#include "harden/hybrid.h"
#include "harden/report.h"
#include "patch/pipeline.h"
#include "sim/engine.h"

namespace {

using namespace r2r;

sim::PairCampaignResult survey(const std::string& name, const elf::Image& image,
                               const guests::Guest& guest) {
  sim::EngineConfig config;
  config.threads = 0;  // hardware concurrency; results are thread-invariant
  const sim::Engine engine(image, guest.good_input, guest.bad_input, config);

  sim::FaultModels models;
  models.bit_flip = false;  // the paper's skip model, order 2
  models.order = 2;
  models.pair_window = 8;
  const sim::PairCampaignResult result = engine.run_pairs(models);
  std::printf("%s\n", harden::residual_double_fault_section(name, result).c_str());
  return result;
}

}  // namespace

int main() {
  const guests::Guest& guest = guests::pincheck();
  const elf::Image input = guests::build_image(guest);

  std::printf("double-fault survey: %s (skip model, pair window 8)\n\n",
              guest.name.c_str());

  const sim::PairCampaignResult original = survey("original", input, guest);

  harden::HybridConfig duplication;
  duplication.countermeasure = harden::HybridCountermeasure::kInstructionDuplication;
  const sim::PairCampaignResult dup =
      survey("hybrid: instruction duplication",
             harden::hybrid_harden(input, duplication).hardened, guest);

  patch::PipelineConfig pipeline_config;
  pipeline_config.campaign.models.bit_flip = false;
  pipeline_config.campaign.threads = 0;
  const patch::PipelineResult patched = patch::faulter_patcher(
      input, guest.good_input, guest.bad_input, pipeline_config);
  const sim::PairCampaignResult hardened =
      survey("faulter+patcher (duplication patterns)", patched.hardened, guest);

  // The claim this example exists to demonstrate.
  const std::size_t second_order = hardened.strictly_higher_order().size();
  const bool clean_order1 = hardened.order1.count(sim::Outcome::kSuccess) == 0;
  std::printf("headline: hardened pincheck is %s under single faults and has %zu "
              "double-fault vulnerabilities the order-1 sweep misses\n",
              clean_order1 ? "clean" : "NOT clean", second_order);
  std::printf("(original binary for comparison: %llu single-fault successes, "
              "%zu strictly second-order pairs)\n",
              static_cast<unsigned long long>(
                  original.order1.count(sim::Outcome::kSuccess)),
              original.strictly_higher_order().size());
  if (!clean_order1 || second_order == 0) {
    std::printf("FAILED: expected order-1 clean with residual double faults\n");
    return 1;
  }
  std::printf("duplication baseline for comparison: %llu single-fault successes "
              "remain (branches cannot be duplicated)\n\n",
              static_cast<unsigned long long>(dup.order1.count(sim::Outcome::kSuccess)));

  // And close the gap: the pair-aware loop (campaign order 2) maps every
  // residual pair back to its static sites and reinforces them until the
  // order-2 sweep comes back clean.
  patch::PipelineConfig order2_config = pipeline_config;
  order2_config.campaign.models.order = 2;
  order2_config.campaign.models.pair_window = 8;
  const patch::PipelineResult closed = patch::faulter_patcher(
      input, guest.good_input, guest.bad_input, order2_config);
  std::printf("%s\n", harden::order2_fixpoint_section(guest.name, closed).c_str());
  std::printf("closer: order-2 hardened pincheck has %zu residual pairs "
              "(order-2 fixpoint: %s) at +%.1f overhead points over order-1\n",
              closed.final_campaign.pair_vulnerabilities.size(),
              closed.order2_fixpoint ? "yes" : "NO",
              closed.order2_overhead_delta_percent());
  if (!closed.order2_fixpoint ||
      !closed.final_campaign.pair_vulnerabilities.empty()) {
    std::printf("FAILED: expected an order-2 fixpoint with zero residual pairs\n");
    return 1;
  }
  return 0;
}
