// Case study 2 end-to-end: the Hybrid compiler-binary approach (Fig. 3)
// applied to the secure bootloader — lift to the SSA IR, run the
// conditional branch hardening pass (Algorithm 1 / Fig. 5), lower back to
// an executable, and verify with the faulter.
//
// Build: cmake --build build && ./build/examples/harden_bootloader_hybrid
#include <cstdio>
#include <fstream>

#include "emu/machine.h"
#include "fault/campaign.h"
#include "guests/guests.h"
#include "harden/hybrid.h"
#include "ir/printer.h"
#include "passes/stats.h"

int main() {
  using namespace r2r;
  const guests::Guest& guest = guests::bootloader();

  std::printf("case study: %s (Hybrid approach)\n\n", guest.name.c_str());
  const elf::Image input = guests::build_image(guest);
  std::printf("input binary: %llu bytes of code\n",
              static_cast<unsigned long long>(input.code_size()));

  const harden::HybridResult result = harden::hybrid_harden(input);

  std::printf("lifted IR (after cleanup passes): %u ops in %u blocks\n",
              result.ir_before.total, result.ir_before.blocks);
  std::printf("hardened IR: %u ops in %u blocks (%u switch validations)\n",
              result.ir_after.total, result.ir_after.blocks,
              result.ir_after.count(ir::Opcode::kSwitch));
  std::printf("hardened branches: %u\n\n", result.ir_after.count(ir::Opcode::kSwitch) / 4);

  // Show the hardened IR of the hash-compare function for inspection.
  if (const ir::Function* fn = result.module.find_function("verify_magic")) {
    std::printf("--- hardened IR of verify_magic ---\n%s\n", ir::print(*fn).c_str());
  }

  std::printf("code size: %llu -> %llu bytes (overhead %.2f%%)\n",
              static_cast<unsigned long long>(result.original_code_size),
              static_cast<unsigned long long>(result.hardened_code_size),
              result.overhead_percent());

  const emu::RunResult good = emu::run_image(result.hardened, guest.good_input);
  const emu::RunResult bad = emu::run_image(result.hardened, guest.bad_input);
  std::printf("\nhardened behaviour:\n  good firmware: %s  tampered: %s\n",
              good.output.c_str(), bad.output.c_str());

  // Fault-simulate the hardened loader (skip model).
  fault::CampaignConfig config;
  config.models.bit_flip = false;
  const fault::CampaignResult campaign = fault::run_campaign(
      result.hardened, guest.good_input, guest.bad_input, config);
  std::printf("skip-model campaign on hardened loader: %llu faults, %zu successful, "
              "%llu detected by the countermeasure\n",
              static_cast<unsigned long long>(campaign.total_faults),
              campaign.vulnerabilities.size(),
              static_cast<unsigned long long>(campaign.count(fault::Outcome::kDetected)));

  const std::vector<std::uint8_t> bytes = elf::write_elf(result.hardened);
  const char* path = "bootloader_hardened.elf";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("hardened ELF written to %s (%zu bytes)\n", path, bytes.size());
  return 0;
}
