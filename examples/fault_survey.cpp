// Fault-model survey: runs both fault models against every case-study
// guest and prints outcome histograms plus the most vulnerable
// instructions with disassembly context — the exploration workflow a
// security analyst would run before deciding what to patch.
//
// Build: cmake --build build && ./build/examples/fault_survey
#include <algorithm>
#include <cstdio>
#include <map>

#include "bir/assemble.h"
#include "bir/cfg.h"
#include "bir/recover.h"
#include "fault/campaign.h"
#include "guests/guests.h"
#include "isa/printer.h"

int main() {
  using namespace r2r;

  for (const guests::Guest* guest_ptr : guests::all_guests()) {
    const guests::Guest& guest = *guest_ptr;
    const elf::Image image = guests::build_image(guest);
    bir::Module module = bir::recover(image);
    bir::assemble(module);  // refresh addresses for the listing

    std::printf("=== %s ===\n", guest.name.c_str());
    for (const bool bit_flips : {false, true}) {
      if (bit_flips && guest.name == "bootloader") {
        // The copy/hash loops make the bootloader's full bit-flip sweep
        // minutes-long; skip it in the survey (bench_claims covers the
        // claim on pincheck).
        std::printf("  [bit-flip sweep skipped: trace too long for a demo]\n");
        continue;
      }
      fault::CampaignConfig config;
      config.models.skip = !bit_flips;
      config.models.bit_flip = bit_flips;
      const fault::CampaignResult campaign =
          fault::run_campaign(image, guest.good_input, guest.bad_input, config);

      std::printf("  model=%s: %llu faults over %llu trace entries\n",
                  bit_flips ? "single-bit-flip" : "instruction-skip",
                  static_cast<unsigned long long>(campaign.total_faults),
                  static_cast<unsigned long long>(campaign.trace_length));
      for (const auto& [outcome, count] : campaign.outcome_counts) {
        std::printf("    %-16s %llu\n", std::string(fault::to_string(outcome)).c_str(),
                    static_cast<unsigned long long>(count));
      }

      // Rank vulnerable instructions by how many distinct faults hit them.
      std::map<std::uint64_t, unsigned> hits;
      for (const fault::Vulnerability& v : campaign.vulnerabilities) ++hits[v.address];
      std::vector<std::pair<std::uint64_t, unsigned>> ranked(hits.begin(), hits.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
        const auto [address, count] = ranked[i];
        const auto index = module.index_of_address(address);
        std::printf("    VULN %#llx (%u fault%s): %s\n",
                    static_cast<unsigned long long>(address), count,
                    count == 1 ? "" : "s",
                    index && module.text[*index].is_instruction()
                        ? isa::print(*module.text[*index].instr).c_str()
                        : "?");
      }
    }
    std::printf("\n");
  }
  return 0;
}
