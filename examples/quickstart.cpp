// Quickstart: the 60-second tour of r2r.
//
//   1. Write a tiny guarded program in the subset assembly.
//   2. Assemble it to an ELF image and run it in the emulator.
//   3. Fault-simulate it (instruction-skip model) and find the successful
//      fault that bypasses the check.
//   4. Patch the binary with the paper's local protection patterns.
//   5. Re-run the campaign: the bypass is gone.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "bir/assemble.h"
#include "bir/module.h"
#include "emu/machine.h"
#include "fault/campaign.h"
#include "isa/printer.h"
#include "patch/patcher.h"

int main() {
  using namespace r2r;

  // 1. A PIN-style check: one byte from stdin, privileged branch.
  const char* source = R"(
.global _start
_start:
    mov rax, 0              ; read(0, buf, 1)
    mov rdi, 0
    mov rsi, offset buf
    mov rdx, 1
    syscall
    mov rsi, offset buf
    movzx rbx, byte ptr [rsi]
    cmp rbx, 'A'            ; authorized input is "A"
    jne deny
grant:
    mov rax, 1              ; write(1, "YES\n", 4)
    mov rdi, 1
    mov rsi, offset yes
    mov rdx, 4
    syscall
    mov rax, 60             ; exit(0)
    mov rdi, 0
    syscall
deny:
    mov rax, 1
    mov rdi, 1
    mov rsi, offset no
    mov rdx, 3
    syscall
    mov rax, 60             ; exit(1)
    mov rdi, 1
    syscall
.section .data
buf: .zero 8
yes: .asciz "YES\n"
no:  .asciz "NO\n"
)";

  // 2. Assemble and run.
  bir::Module module = bir::module_from_assembly(source);
  elf::Image image = bir::assemble(module);
  std::printf("assembled: %llu bytes of code, entry %#llx\n",
              static_cast<unsigned long long>(image.code_size()),
              static_cast<unsigned long long>(image.entry));

  const emu::RunResult good = emu::run_image(image, "A");
  const emu::RunResult bad = emu::run_image(image, "B");
  std::printf("run(\"A\"): %s (exit %lld)\n",
              good.output.substr(0, good.output.size() - 1).c_str(),
              static_cast<long long>(good.exit_code));
  std::printf("run(\"B\"): %s (exit %lld)\n\n",
              bad.output.substr(0, bad.output.size() - 1).c_str(),
              static_cast<long long>(bad.exit_code));

  // 3. Fault campaign: which instruction-skips flip "NO" into "YES"?
  fault::CampaignConfig config;
  config.models.bit_flip = false;  // instruction-skip model only
  fault::CampaignResult campaign = fault::run_campaign(image, "A", "B", config);
  std::printf("fault campaign (skip model): %llu faults injected, %zu successful\n",
              static_cast<unsigned long long>(campaign.total_faults),
              campaign.vulnerabilities.size());
  for (const fault::Vulnerability& v : campaign.vulnerabilities) {
    const auto index = module.index_of_address(v.address);
    std::printf("  VULNERABLE %#llx: %s\n", static_cast<unsigned long long>(v.address),
                index ? isa::print(*module.text[*index].instr).c_str() : "?");
  }

  // 4. Patch every vulnerable point with the paper's local patterns.
  const patch::PatchStats stats = patch::apply_patches(module, campaign.vulnerabilities);
  image = bir::assemble(module);
  std::printf("\npatched %llu site(s); code is now %llu bytes\n",
              static_cast<unsigned long long>(stats.total_applied()),
              static_cast<unsigned long long>(image.code_size()));

  // 5. Verify: behaviour preserved, bypass eliminated.
  const emu::RunResult good2 = emu::run_image(image, "A");
  const emu::RunResult bad2 = emu::run_image(image, "B");
  std::printf("run(\"A\") after patch: exit %lld; run(\"B\"): exit %lld\n",
              static_cast<long long>(good2.exit_code),
              static_cast<long long>(bad2.exit_code));
  campaign = fault::run_campaign(image, "A", "B", config);
  std::printf("fault campaign after patch: %zu successful fault(s), %llu detected\n",
              campaign.vulnerabilities.size(),
              static_cast<unsigned long long>(campaign.count(fault::Outcome::kDetected)));
  return campaign.vulnerabilities.empty() ? 0 : 1;
}
