// Case study 1 end-to-end: the Faulter+Patcher approach (Fig. 2) applied
// to the pincheck binary, with per-iteration reporting, and the hardened
// executable written to disk as a real ELF file.
//
// Build: cmake --build build && ./build/examples/harden_pincheck
#include <cstdio>
#include <fstream>

#include "elf/image.h"
#include "emu/machine.h"
#include "guests/guests.h"
#include "patch/pipeline.h"

int main() {
  using namespace r2r;
  const guests::Guest& guest = guests::pincheck();

  std::printf("case study: %s\n", guest.name.c_str());
  std::printf("authorized PIN: \"%s\"   attacker PIN: \"%s\"\n\n",
              guest.good_input.c_str(), guest.bad_input.c_str());

  const elf::Image input = guests::build_image(guest);
  std::printf("input binary: %llu bytes of code\n",
              static_cast<unsigned long long>(input.code_size()));

  // Run the iterative faulter+patcher loop under both fault models.
  patch::PipelineConfig config;
  const patch::PipelineResult result =
      patch::faulter_patcher(input, guest.good_input, guest.bad_input, config);

  std::printf("\niteration history:\n");
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const patch::IterationReport& it = result.iterations[i];
    std::printf(
        "  #%zu: %llu successful faults at %llu point(s); %llu patched, %llu "
        "unpatchable; code %llu B\n",
        i, static_cast<unsigned long long>(it.successful_faults),
        static_cast<unsigned long long>(it.vulnerable_points),
        static_cast<unsigned long long>(it.patches_applied),
        static_cast<unsigned long long>(it.unpatchable_points),
        static_cast<unsigned long long>(it.code_size));
  }
  std::printf("fix-point: %s; residual successful faults: %zu\n",
              result.fixpoint ? "reached" : "iteration cap",
              result.final_campaign.vulnerabilities.size());
  std::printf("code size: %llu -> %llu bytes (overhead %.2f%%)\n",
              static_cast<unsigned long long>(result.original_code_size),
              static_cast<unsigned long long>(result.hardened_code_size),
              result.overhead_percent());

  // Confirm behaviour is intact.
  const emu::RunResult good = emu::run_image(result.hardened, guest.good_input);
  const emu::RunResult bad = emu::run_image(result.hardened, guest.bad_input);
  std::printf("\nhardened behaviour: good exit=%lld, bad exit=%lld (expected %d/%d)\n",
              static_cast<long long>(good.exit_code), static_cast<long long>(bad.exit_code),
              guest.good_exit, guest.bad_exit);

  // Emit a loadable ELF.
  const std::vector<std::uint8_t> bytes = elf::write_elf(result.hardened);
  const char* path = "pincheck_hardened.elf";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::printf("hardened ELF written to %s (%zu bytes)\n", path, bytes.size());
  return 0;
}
